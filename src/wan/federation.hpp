// Multi-site composition: today's single-switch clusters become the
// *sites* of a WAN federation.
//
// Every site is a complete sub-world -- Cluster, CDD fabric, cache
// fabric, array controller -- sharing ONE simulation (a site is the same
// unit the sharded engine advances; composing N of them under one event
// loop keeps the federation a pure function of the seed).  Sites are
// joined by a full mesh of wan::Links (src/wan/link.hpp).
//
// Namespace: every site's array exposes the same logical geometry, and
// the federation splits it into `sites` equal regions.  Region h is site
// h's *primary* data; on every other site the same LBA range is the
// *geo-mirror* region for h (the RAID-x data-zone/image-zone symmetry,
// one level up).  A global LBA therefore means the same thing everywhere,
// which makes site caches collision-free and mirror application a plain
// same-LBA write on the peer.
//
// Remote read path (the XRootD-style hierarchy):
//   1. the local site's cache fabric -- a hit never crosses the WAN;
//   2. the origin (home) site over the WAN: request header out, data
//      back, each over the direct link, or *redirected* through one
//      intermediate site when the direct link is down but a two-hop path
//      is up;
//   3. with geo-replication, a fully unreachable origin degrades to the
//      local mirror region -- possibly stale, and counted as such when
//      the origin->local replication stream still has a backlog.
// Fetched blocks are installed in the local site cache, so a site's
// second read of a remote block is a LAN hit.
//
// Remote writes always forward to the origin (redirect allowed): the
// origin commits them like any local write, which also enqueues them on
// its replication streams when geo-replication is on.  The writer's site
// cache is invalidated for the written range (remote caches revalidate
// only through replication -- the XRootD consistency model).
//
// Site partition = every incident link down.  Site-local traffic keeps
// running; cross-site paths fail fast, replication backlogs grow, and
// heal() lets the throttled catch-up drain them -- the
// `bench/wan_replication` partition-recovery scenario.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "cache/cache_fabric.hpp"
#include "cdd/cdd.hpp"
#include "cluster/cluster.hpp"
#include "ha/fault_plan.hpp"
#include "obs/metrics.hpp"
#include "obs/obs.hpp"
#include "raid/controller.hpp"
#include "sim/task.hpp"
#include "wan/link.hpp"
#include "wan/replication.hpp"
#include "workload/engines.hpp"

namespace raidx::wan {

struct FederationParams {
  int sites = 2;
  /// Applied to every inter-site link (full mesh).
  LinkParams link;
  /// Asynchronous cross-site mirrors (per-site replication log).
  bool geo_rep = false;
  ReplicationParams repl;
  /// Per-site world construction.
  cluster::ClusterParams cluster;
  workload::Arch arch = workload::Arch::kRaidX;
  raid::EngineParams engine;
  cache::CacheParams cache;
  cdd::CddParams cdd;
};

/// Federation-level counters (exported as `wan.*`).
struct WanStats {
  std::uint64_t remote_reads = 0;
  std::uint64_t remote_writes = 0;
  std::uint64_t cache_hits = 0;     // served by the local site cache
  std::uint64_t cache_fills = 0;    // blocks installed after a WAN fetch
  std::uint64_t origin_reads = 0;   // crossed the WAN to the home site
  std::uint64_t redirects = 0;      // took a two-hop detour
  std::uint64_t mirror_reads = 0;   // served by the local geo-mirror
  std::uint64_t stale_served = 0;   // mirror reads with a pending backlog
  std::uint64_t unreachable = 0;    // no path, no mirror: the op failed
  std::uint64_t write_forward_failures = 0;
  std::uint64_t read_bytes = 0;   // payload bytes fetched over the WAN
  std::uint64_t write_bytes = 0;  // payload bytes forwarded over the WAN
};

class Federation {
 public:
  Federation(sim::Simulation& sim, FederationParams params);
  ~Federation();
  Federation(const Federation&) = delete;
  Federation& operator=(const Federation&) = delete;

  sim::Simulation& sim() { return sim_; }
  const FederationParams& params() const { return params_; }
  int sites() const { return params_.sites; }
  bool geo_rep() const { return params_.geo_rep; }

  cluster::Cluster& cluster(int site) { return *sites_[site].cluster; }
  cdd::CddFabric& fabric(int site) { return *sites_[site].fabric; }
  cache::CacheFabric& cache(int site) { return *sites_[site].cache; }
  raid::ArrayController& engine(int site) { return *sites_[site].engine; }

  int num_links() const { return static_cast<int>(links_.size()); }
  Link& link_by_id(int id) { return *links_[id]; }
  Link& link_between(int a, int b);
  /// Full-mesh link count for `sites` sites (CLI validation needs it
  /// before the federation exists).
  static int mesh_links(int sites) { return sites * (sites - 1) / 2; }

  /// The shared logical namespace: every site's array is split into
  /// `sites` regions of region_blocks(); region h is site h's primary.
  std::uint64_t region_blocks() const { return region_blocks_; }
  std::uint64_t region_base(int site) const {
    return static_cast<std::uint64_t>(site) * region_blocks_;
  }
  int home_of(std::uint64_t lba) const {
    const auto h = static_cast<int>(lba / region_blocks_);
    return h >= params_.sites ? params_.sites - 1 : h;
  }
  std::uint32_t block_bytes() const { return block_bytes_; }
  /// Node that fronts federation traffic for `lba` at a site (spread
  /// deterministically over the site's nodes).
  int gateway(std::uint64_t lba) const {
    return static_cast<int>(lba % static_cast<std::uint64_t>(
                                      params_.cluster.geometry.nodes));
  }

  /// Open-loop RemoteHook entry: map a Zipf popularity slot from `src`
  /// onto a peer site's primary region and run the cross-site op.
  sim::Task<bool> remote_io(int src, std::uint64_t slot,
                            std::uint32_t nblocks, bool write);

  /// Cross-site read of [lba, lba+nblocks) homed at home_of(lba), on
  /// behalf of site `src` (cache -> WAN origin -> geo-mirror).
  sim::Task<bool> remote_read(int src, std::uint64_t lba,
                              std::uint32_t nblocks,
                              obs::TraceContext ctx = {});
  /// Forward a write to the origin site (redirect allowed).
  sim::Task<bool> remote_write(int src, std::uint64_t lba,
                               std::uint32_t nblocks,
                               obs::TraceContext ctx = {});

  /// Partition/heal a site: every incident link goes down/up.
  void set_site_up(int site, bool up);
  bool site_up(int site) const { return sites_[site].up; }

  /// Arm a fault plan against the federation: site partitions, link
  /// brownouts, and disk fail/heal in federation-global disk ids
  /// (site = id / disks_per_site).  Node partitions, corruption, and
  /// orchestrated recovery are single-site features; arm() rejects them
  /// with std::invalid_argument (the CLI validates first and exits 2).
  void arm_faults(const ha::FaultPlan& plan);

  Replicator* replicator() { return replicator_.get(); }
  const WanStats& stats() const { return stats_; }
  /// Remote read latency (ns), all resolutions.
  const obs::Histogram& remote_read_latency() const { return read_lat_; }

  /// Export per-site registries under `site.NNN.` plus the federation's
  /// own `wan.*` counters/histograms into `reg`.
  void collect(obs::Registry& reg);

 private:
  friend class Replicator;

  struct SiteObserver;
  struct Site {
    std::unique_ptr<cluster::Cluster> cluster;
    std::unique_ptr<cdd::CddFabric> fabric;
    std::unique_ptr<cache::CacheFabric> cache;
    std::unique_ptr<raid::ArrayController> engine;
    std::unique_ptr<SiteObserver> observer;
    bool up = true;
  };

  /// Route src -> dst: the direct link, or a two-hop detour through the
  /// first intermediate site with both legs up.  Empty when unreachable.
  std::vector<Link*> route(int src, int dst);
  /// Ship `bytes` along `path` (every hop must deliver).
  sim::Task<bool> ship(const std::vector<Link*>& path, int from,
                       std::uint64_t bytes, obs::TraceContext ctx);
  void note_site_write(int site, std::uint64_t lba, std::uint32_t nblocks);
  sim::Task<> fault_driver(std::vector<ha::FaultEvent> events);

  sim::Simulation& sim_;
  FederationParams params_;
  std::vector<Site> sites_;
  std::vector<std::unique_ptr<Link>> links_;
  std::unique_ptr<Replicator> replicator_;
  std::uint64_t region_blocks_ = 0;
  std::uint32_t block_bytes_ = 0;
  WanStats stats_;
  obs::Histogram read_lat_;
};

}  // namespace raidx::wan
