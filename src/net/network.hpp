// Switched full-duplex Fast Ethernet model.
//
// Every node has one link to the switch, modeled as two capacity-1
// resources (TX and RX).  A message serializes on the sender's TX port,
// crosses the switch after a fixed forwarding latency, then serializes on
// the receiver's RX port.  This captures the two effects the paper's
// numbers hinge on:
//   * per-link serialization: one 100 Mbps link moves at most ~12.5 MB/s,
//     which bounds any single client and any single server;
//   * output-port contention: N clients funneling into one server share the
//     server's RX port -- the mechanism behind the NFS baseline flattening
//     out while the serverless architectures keep scaling.
// Streams of back-to-back messages pipeline across the TX and RX phases, so
// sustained point-to-point throughput equals the effective link rate.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "obs/obs.hpp"
#include "sim/event_queue.hpp"
#include "sim/resource.hpp"
#include "sim/task.hpp"

namespace raidx::net {

struct NetParams {
  double link_mbs = 12.5;       // 100 Mbps Fast Ethernet
  double efficiency = 0.90;     // Ethernet/IP/TCP framing overhead
  sim::Time switch_latency = sim::microseconds(20);
  sim::Time per_message_overhead = sim::microseconds(120);  // protocol stack

  double effective_mbs() const { return link_mbs * efficiency; }
};

class Network {
 public:
  Network(sim::Simulation& sim, NetParams params, int nodes);
  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  /// Move `bytes` from node `from` to node `to`; completes when the last
  /// byte has drained from the receiver's port.  from == to is free (the
  /// loopback path never touches the wire).  Returns true when the message
  /// was delivered; false when either endpoint was partitioned away
  /// (set_node_up) -- the sender still pays its TX serialization (the NIC
  /// transmits into a dead link), the message is dropped at the switch,
  /// and the caller must not deliver the payload.  With every node up the
  /// event sequence is bit-identical to the pre-fault-injection model.
  sim::Task<bool> transmit(int from, int to, std::uint64_t bytes,
                           obs::TraceContext ctx = {});

  /// Fault injection: mark a node's link up/down (down drops every message
  /// to or from it at the switch).  Nodes start up.
  void set_node_up(int node, bool up);
  bool node_up(int node) const {
    return up_[static_cast<std::size_t>(node)] != 0;
  }
  std::uint64_t messages_dropped() const { return dropped_; }
  /// True once set_node_up has ever been called: obs export gates the
  /// drop counter on this so fault-free runs keep their exact key set.
  bool fault_injection_used() const { return fault_injection_used_; }

  int nodes() const { return static_cast<int>(tx_.size()); }
  const NetParams& params() const { return params_; }

  std::uint64_t bytes_sent(int node) const { return bytes_sent_[node]; }
  std::uint64_t messages_sent(int node) const { return msgs_sent_[node]; }
  sim::Time tx_busy(int node) const { return tx_[node]->busy_time(); }
  sim::Time rx_busy(int node) const { return rx_[node]->busy_time(); }

 private:
  sim::Simulation& sim_;
  NetParams params_;
  std::vector<std::unique_ptr<sim::Resource>> tx_;
  std::vector<std::unique_ptr<sim::Resource>> rx_;
  std::vector<obs::BusyRecorder> tx_rec_;
  std::vector<obs::BusyRecorder> rx_rec_;
  std::vector<std::uint64_t> bytes_sent_;
  std::vector<std::uint64_t> msgs_sent_;
  std::vector<char> up_;
  std::uint64_t dropped_ = 0;
  bool fault_injection_used_ = false;
};

}  // namespace raidx::net
