// Tests for the workload generators (Fig 5 parallel I/O, Fig 6 Andrew) and
// the analytic Table-2 model.
#include <gtest/gtest.h>

#include <set>

#include "analytic/model.hpp"
#include "test_util.hpp"
#include "workload/andrew.hpp"
#include "workload/engines.hpp"
#include "workload/parallel_io.hpp"

namespace raidx::workload {
namespace {

using test::Rig;

cluster::ClusterParams perf_cluster() {
  auto p = test::small_cluster(4, 1, /*blocks_per_disk=*/4096,
                               /*block_bytes=*/4096);
  p.disk.store_data = false;
  return p;
}

// The paper's 32 KB stripe unit: seeks amortize over real transfers, so
// scaling behaviour is meaningful.
cluster::ClusterParams paper_unit_cluster() {
  auto p = test::small_cluster(4, 1, /*blocks_per_disk=*/4096,
                               /*block_bytes=*/32'768);
  p.disk.store_data = false;
  return p;
}

TEST(ParallelIo, SingleClientMovesConfiguredBytes) {
  Rig rig(perf_cluster());
  raid::RaidxController eng(rig.fabric);
  ParallelIoConfig cfg;
  cfg.clients = 1;
  cfg.op = IoOp::kRead;
  cfg.bytes_per_op = 64 * 4096;
  const auto r = run_parallel_io(eng, cfg);
  ASSERT_EQ(r.clients.size(), 1u);
  EXPECT_EQ(r.clients[0].bytes, cfg.bytes_per_op);
  EXPECT_GT(r.aggregate_mbs, 0.0);
  EXPECT_GT(r.elapsed, 0);
}

TEST(ParallelIo, BarrierAlignsClientStarts) {
  Rig rig(perf_cluster());
  raid::RaidxController eng(rig.fabric);
  ParallelIoConfig cfg;
  cfg.clients = 4;
  cfg.op = IoOp::kWrite;
  cfg.bytes_per_op = 16 * 4096;
  const auto r = run_parallel_io(eng, cfg);
  std::set<sim::Time> starts;
  for (const auto& c : r.clients) starts.insert(c.start);
  EXPECT_EQ(starts.size(), 1u);  // MPI_Barrier semantics
}

TEST(ParallelIo, MoreClientsRaiseAggregateBandwidth) {
  // A single client's scattered small ops are latency-bound; more clients
  // engage more disks in parallel (Fig 5's x-axis effect).
  auto measure = [](int clients) {
    Rig rig(paper_unit_cluster());
    raid::RaidxController eng(rig.fabric);
    ParallelIoConfig cfg;
    cfg.clients = clients;
    cfg.op = IoOp::kRead;
    cfg.bytes_per_op = 32'768;
    cfg.ops_per_client = 30;
    cfg.scattered = true;
    cfg.scatter_region_blocks = 64;
    return run_parallel_io(eng, cfg).aggregate_mbs;
  };
  EXPECT_GT(measure(4), measure(1));
}

TEST(ParallelIo, DeterministicForFixedSeed) {
  auto measure = [] {
    Rig rig(perf_cluster());
    raid::RaidxController eng(rig.fabric);
    ParallelIoConfig cfg;
    cfg.clients = 3;
    cfg.op = IoOp::kWrite;
    cfg.bytes_per_op = 4096;
    cfg.ops_per_client = 20;
    cfg.scattered = true;
    cfg.scatter_region_blocks = 64;
    cfg.seed = 99;
    return run_parallel_io(eng, cfg);
  };
  const auto a = measure();
  const auto b = measure();
  EXPECT_EQ(a.elapsed, b.elapsed);
  EXPECT_DOUBLE_EQ(a.aggregate_mbs, b.aggregate_mbs);
}

TEST(ParallelIo, ExcludedNodeHostsNoClient) {
  Rig rig(perf_cluster());
  raid::RaidxController eng(rig.fabric);
  ParallelIoConfig cfg;
  cfg.clients = 3;
  cfg.op = IoOp::kWrite;
  cfg.bytes_per_op = 4 * 4096;
  cfg.exclude_node = 0;
  const auto r = run_parallel_io(eng, cfg);
  (void)r;
  // Node 0 sent no requests of its own -- its traffic is purely serving.
  // (Its TX is used for replies, so check the request counters instead.)
  EXPECT_GT(rig.fabric.remote_requests() + rig.fabric.local_requests(), 0u);
}

TEST(ParallelIo, RejectsOversizedWorkload) {
  Rig rig(perf_cluster());
  raid::RaidxController eng(rig.fabric);
  ParallelIoConfig cfg;
  cfg.clients = 1;
  cfg.bytes_per_op =
      (eng.logical_blocks() + 16) * 4096;  // bigger than the array
  EXPECT_THROW(run_parallel_io(eng, cfg), std::invalid_argument);
}

TEST(ParallelIo, BackgroundDrainReportedForRaidxWrites) {
  Rig rig(perf_cluster());
  raid::RaidxController eng(rig.fabric);
  ParallelIoConfig cfg;
  cfg.clients = 2;
  cfg.op = IoOp::kWrite;
  cfg.bytes_per_op = 64 * 4096;
  const auto r = run_parallel_io(eng, cfg);
  // Deferred image flushes finish after the last client's foreground end.
  EXPECT_GT(r.background_drain, 0);
}

TEST(Engines, FactoryProducesAllArchitectures) {
  Rig rig(test::small_cluster());
  for (Arch a : {Arch::kRaid0, Arch::kRaid1, Arch::kRaid5, Arch::kRaid10,
                 Arch::kRaidX, Arch::kNfs}) {
    auto eng = make_engine(a, rig.fabric);
    ASSERT_NE(eng, nullptr);
    EXPECT_GT(eng->logical_blocks(), 0u);
  }
  EXPECT_EQ(paper_architectures().size(), 4u);
}

TEST(Andrew, RunsAllPhasesOnTinyConfig) {
  Rig rig(perf_cluster());
  raid::RaidxController eng(rig.fabric);
  AndrewConfig cfg;
  cfg.clients = 2;
  cfg.dirs = 3;
  cfg.files = 6;
  cfg.min_file_bytes = 512;
  cfg.max_file_bytes = 8192;
  const auto r = run_andrew(eng, cfg);
  EXPECT_GT(r.make_dir, 0);
  EXPECT_GT(r.copy_files, 0);
  EXPECT_GT(r.scan_dir, 0);
  EXPECT_GT(r.read_all, 0);
  EXPECT_GT(r.compile, 0);
  EXPECT_EQ(r.total(),
            r.make_dir + r.copy_files + r.scan_dir + r.read_all + r.compile);
}

TEST(Andrew, MoreClientsNeverFinishFaster) {
  auto measure = [](int clients) {
    Rig rig(perf_cluster());
    raid::Raid5Controller eng(rig.fabric);
    AndrewConfig cfg;
    cfg.clients = clients;
    cfg.dirs = 2;
    cfg.files = 4;
    cfg.min_file_bytes = 512;
    cfg.max_file_bytes = 4096;
    return run_andrew(eng, cfg).total();
  };
  EXPECT_GE(measure(4), measure(1));
}

TEST(Analytic, Table2RatiosHold) {
  analytic::ModelParams p;
  p.n = 16;
  p.disk_bw_mbs = 18.0;
  using analytic::Arch;
  // RAID-x matches RAID-0 everywhere in bandwidth.
  EXPECT_DOUBLE_EQ(analytic::read_bandwidth(Arch::kRaidX, p),
                   analytic::read_bandwidth(Arch::kRaid0, p));
  EXPECT_DOUBLE_EQ(analytic::small_write_bandwidth(Arch::kRaidX, p),
                   analytic::small_write_bandwidth(Arch::kRaid0, p));
  // RAID-5 small writes collapse to a quarter.
  EXPECT_DOUBLE_EQ(analytic::small_write_bandwidth(Arch::kRaid5, p),
                   analytic::small_write_bandwidth(Arch::kRaid0, p) / 4);
  // Chained declustering halves write bandwidth.
  EXPECT_DOUBLE_EQ(analytic::large_write_bandwidth(Arch::kChained, p),
                   analytic::large_write_bandwidth(Arch::kRaid0, p) / 2);
  // RAID-x's write-time penalty vanishes as n grows: the improvement over
  // chained declustering approaches 2 (the paper's claim).
  analytic::ModelParams big = p;
  big.n = 128;
  const double factor =
      static_cast<double>(analytic::large_write_time(Arch::kChained, big)) /
      static_cast<double>(analytic::large_write_time(Arch::kRaidX, big));
  EXPECT_GT(factor, 1.9);
  EXPECT_LE(factor, 2.0);
}

TEST(Analytic, SmallOpsIndependentOfFileSize) {
  analytic::ModelParams p;
  const auto t1 = analytic::small_read_time(analytic::Arch::kRaidX, p);
  p.m *= 100;
  EXPECT_EQ(analytic::small_read_time(analytic::Arch::kRaidX, p), t1);
}

TEST(Analytic, FaultCoverageStrings) {
  analytic::ModelParams p;
  p.n = 16;
  EXPECT_EQ(analytic::fault_coverage(analytic::Arch::kRaid0, p), "none");
  EXPECT_NE(analytic::fault_coverage(analytic::Arch::kRaidX, p)
                .find("mirror group"),
            std::string::npos);
  EXPECT_NE(analytic::fault_coverage(analytic::Arch::kChained, p).find("8"),
            std::string::npos);
}

}  // namespace
}  // namespace raidx::workload
