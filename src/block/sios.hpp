// Single I/O space (SIOS) geometry.
//
// The paper's SIOS makes all n*k distributed disks addressable as one
// global virtual disk.  ArrayGeometry fixes the paper's disk naming: disk
// D(g*n + j) is the g-th local disk of node j, so a "row" g is a group of n
// disks, one per node, that forms a stripe group; consecutive rows of the
// same node share that node's SCSI bus (the pipelining dimension k).
#pragma once

#include <cstdint>
#include <string>

namespace raidx::block {

struct ArrayGeometry {
  int nodes = 16;                       // n: degree of striping parallelism
  int disks_per_node = 1;               // k: depth of SCSI pipelining
  std::uint64_t blocks_per_disk = 327'680;  // 10 GB of 32 KB stripe units
  std::uint32_t block_bytes = 32'768;   // the paper's stripe unit

  int total_disks() const { return nodes * disks_per_node; }
  std::uint64_t total_blocks() const {
    return static_cast<std::uint64_t>(total_disks()) * blocks_per_disk;
  }
  std::uint64_t bytes_per_disk() const {
    return blocks_per_disk * block_bytes;
  }

  /// Disk id of the g-th disk of node j (paper's D(g*n + j)).
  int disk_id(int row, int node) const { return row * nodes + node; }
  int node_of(int disk) const { return disk % nodes; }
  int row_of(int disk) const { return disk / nodes; }

  bool valid() const {
    return nodes >= 2 && disks_per_node >= 1 && blocks_per_disk > 0 &&
           block_bytes > 0;
  }

  std::string describe() const;
};

/// A contiguous physical run on one disk.
struct PhysExtent {
  int disk = -1;
  std::uint64_t offset = 0;
  std::uint32_t nblocks = 0;

  bool operator==(const PhysExtent&) const = default;
};

/// A single physical block address.
struct PhysBlock {
  int disk = -1;
  std::uint64_t offset = 0;

  bool operator==(const PhysBlock&) const = default;
};

}  // namespace raidx::block
