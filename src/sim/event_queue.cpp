#include "sim/event_queue.hpp"

#include <cassert>
#include <stdexcept>

namespace raidx::sim {

Simulation::~Simulation() {
  // Destroy any still-suspended top-level frames.  Nothing will resume them
  // afterwards: the event queue dies with us and child frames are owned by
  // their parents' frames, so destruction cascades safely.
  for (auto h : processes_) {
    if (h) h.destroy();
  }
}

void Simulation::schedule(Time delay, std::function<void()> fn) {
  assert(delay >= 0 && "cannot schedule into the past");
  queue_.push(Event{now_ + delay, next_seq_++, std::move(fn), nullptr});
}

void Simulation::schedule_resume(Time delay, std::coroutine_handle<> h) {
  assert(delay >= 0 && "cannot schedule into the past");
  queue_.push(Event{now_ + delay, next_seq_++, {}, h});
}

void Simulation::spawn(Task<> task) {
  auto handle = task.release();
  if (!handle) return;
  processes_.push_back(handle);
  // Start lazily via the queue so spawn() itself never re-enters user code;
  // processes spawned at the same instant start in spawn order.
  queue_.push(Event{now_, next_seq_++, {}, handle});
}

void Simulation::dispatch(Event& ev) {
  now_ = ev.at;
  ++events_processed_;
  if (ev.fn) {
    ev.fn();
  } else if (ev.resume && !ev.resume.done()) {
    ev.resume.resume();
  }
}

void Simulation::reap_finished() {
  std::size_t kept = 0;
  for (std::size_t i = 0; i < processes_.size(); ++i) {
    auto h = processes_[i];
    if (h.done()) {
      if (h.promise().exception && !pending_exception_) {
        pending_exception_ = h.promise().exception;
      }
      h.destroy();
    } else {
      processes_[kept++] = h;
    }
  }
  processes_.resize(kept);
}

void Simulation::run() {
  while (!queue_.empty()) {
    Event ev = std::move(const_cast<Event&>(queue_.top()));
    queue_.pop();
    dispatch(ev);
    if ((events_processed_ & 0x3ff) == 0) reap_finished();
    if (pending_exception_) break;
  }
  reap_finished();
  if (pending_exception_) {
    auto ex = pending_exception_;
    pending_exception_ = nullptr;
    std::rethrow_exception(ex);
  }
}

bool Simulation::run_until(Time deadline) {
  while (!queue_.empty() && queue_.top().at <= deadline) {
    Event ev = std::move(const_cast<Event&>(queue_.top()));
    queue_.pop();
    dispatch(ev);
    if ((events_processed_ & 0x3ff) == 0) reap_finished();
    if (pending_exception_) break;
  }
  reap_finished();
  if (pending_exception_) {
    auto ex = pending_exception_;
    pending_exception_ = nullptr;
    std::rethrow_exception(ex);
  }
  if (queue_.empty()) return true;
  now_ = deadline > now_ ? deadline : now_;
  return false;
}

}  // namespace raidx::sim
