// Ablation: which ingredient of orthogonal striping and mirroring buys
// what?  DESIGN.md calls out two separable design choices:
//   * background vs foreground image flushes ("hiding mirroring overhead");
//   * clustered vs scattered image placement (one long sequential write
//     per stripe vs n-1 scattered ops).
// This bench measures all four combinations at 16 clients, against
// RAID-10 (synchronous + scattered by construction) and RAID-0 (no
// redundancy ceiling).
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "sim/stats.hpp"
#include "workload/parallel_io.hpp"

namespace {

using namespace raidx;
using bench::World;
using workload::Arch;
using workload::IoOp;
using workload::ParallelIoConfig;

struct Measured {
  double foreground;
  double sustained;
};

Measured measure_raidx(bool background, bool clustered, IoOp op,
                       std::uint64_t bytes_per_op, int ops, bool scattered) {
  raid::EngineParams ep;
  ep.background_mirrors = background;
  ep.clustered_images = clustered;
  World world(bench::perf_trojans(), Arch::kRaidX, ep);
  ParallelIoConfig cfg;
  cfg.clients = 16;
  cfg.op = op;
  cfg.bytes_per_op = bytes_per_op;
  cfg.ops_per_client = ops;
  cfg.scattered = scattered;
  const auto r = workload::run_parallel_io(*world.engine, cfg);
  return {r.aggregate_mbs, r.sustained_mbs};
}

Measured measure_arch(Arch arch, IoOp op, std::uint64_t bytes_per_op,
                      int ops, bool scattered) {
  World world(bench::perf_trojans(), arch);
  ParallelIoConfig cfg;
  cfg.clients = 16;
  cfg.op = op;
  cfg.bytes_per_op = bytes_per_op;
  cfg.ops_per_client = ops;
  cfg.scattered = scattered;
  const auto r = workload::run_parallel_io(*world.engine, cfg);
  return {r.aggregate_mbs, r.sustained_mbs};
}

}  // namespace

int main() {
  std::printf(
      "OSM ablation: 16 clients on the simulated Trojans cluster "
      "(aggregate MB/s)\n\n");

  struct OpSpec {
    const char* name;
    IoOp op;
    std::uint64_t bytes;
    int ops;
    bool scattered;
  };
  const OpSpec large{"large write (64 MB/client)", IoOp::kWrite,
                     bench::smoke_pick(64ull << 20, 4ull << 20), 1, false};
  const OpSpec small{"small write (32 KB scattered)", IoOp::kWrite,
                     32ull << 10, bench::smoke_pick(40, 8), true};

  for (const OpSpec& spec : {large, small}) {
    std::printf("%s\n", spec.name);
    sim::TablePrinter table(
        {"configuration", "foreground MB/s", "sustained MB/s"});
    auto add = [&](const char* label, Measured m) {
      table.add_row({label, bench::mbs(m.foreground),
                     bench::mbs(m.sustained)});
    };
    add("RAID-x: background + clustered  (OSM, the paper)",
        measure_raidx(true, true, spec.op, spec.bytes, spec.ops,
                      spec.scattered));
    add("RAID-x: foreground + clustered  (no hiding)",
        measure_raidx(false, true, spec.op, spec.bytes, spec.ops,
                      spec.scattered));
    add("RAID-x: background + scattered  (no clustering)",
        measure_raidx(true, false, spec.op, spec.bytes, spec.ops,
                      spec.scattered));
    add("RAID-x: foreground + scattered  (both off)",
        measure_raidx(false, false, spec.op, spec.bytes, spec.ops,
                      spec.scattered));
    add("RAID-10 (chained declustering reference)",
        measure_arch(Arch::kRaid10, spec.op, spec.bytes, spec.ops,
                     spec.scattered));
    add("RAID-0 (no-redundancy ceiling)",
        measure_arch(Arch::kRaid0, spec.op, spec.bytes, spec.ops,
                     spec.scattered));
    table.print();
    std::printf("\n");
  }

  std::printf(
      "Reading: 'foreground' is what clients observe (deferred image\n"
      "flushes excluded); 'sustained' charges the full drain.  Deferral is\n"
      "the dominant lever (~1.3-1.5x on writes).  The clustered/scattered\n"
      "rows differ only in dispatch granularity -- both place images at\n"
      "OSM addresses, so the run stays sequential either way; the *layout*\n"
      "effect of genuinely scattered mirrors is the RAID-10 row, which\n"
      "pays a synchronous scattered copy per block and lands ~2x lower.\n");
  return 0;
}
