// Layout policies: how logical blocks map to physical disk blocks.
//
// A Layout is pure address arithmetic (no simulation state), so every
// mapping property -- orthogonality, capacity accounting, contiguity of
// per-disk runs -- is unit- and property-testable in isolation.  The shared
// logical addressing follows the paper: block b belongs to stripe group
// s = b/n at slot j = b%n; stripe groups are laid across disk rows
// round-robin (row g = s%k), so consecutive groups land on different disks
// of the same SCSI bus and can be pipelined.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "block/sios.hpp"

namespace raidx::raid {

class Layout {
 public:
  explicit Layout(block::ArrayGeometry geo) : geo_(geo) {}
  virtual ~Layout() = default;

  virtual std::string name() const = 0;

  /// Usable logical capacity in blocks.
  virtual std::uint64_t logical_blocks() const = 0;

  /// Primary (data) location of a logical block.
  virtual block::PhysBlock data_location(std::uint64_t lba) const = 0;

  /// Redundant copies of the block (empty for RAID-0/RAID-5).
  virtual std::vector<block::PhysBlock> mirror_locations(
      std::uint64_t lba) const {
    (void)lba;
    return {};
  }

  const block::ArrayGeometry& geometry() const { return geo_; }

  /// Blocks per full stripe group (the natural write-chunk size).
  virtual std::uint32_t stripe_width() const {
    return static_cast<std::uint32_t>(geo_.nodes);
  }

 protected:
  block::ArrayGeometry geo_;
};

/// Merge the data locations of [lba, lba+nblocks) into maximal contiguous
/// per-disk extents, preserving logical order within each disk.  Large
/// parallel I/O relies on this: a full-stripe access becomes exactly one
/// run per disk.
std::vector<block::PhysExtent> data_extents(const Layout& layout,
                                            std::uint64_t lba,
                                            std::uint32_t nblocks);

}  // namespace raidx::raid
