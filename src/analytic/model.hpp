// Closed-form performance model of Table 2.
//
// The paper's expected peak performance of the four RAID architectures as a
// function of: n (disks), B (per-disk bandwidth), m (file blocks), R and W
// (average block read/write time).  Reconstructed values (OCR of the table
// is partial; entries follow the canonical derivations the surrounding text
// confirms -- e.g. "the improvement factor [over chained declustering]
// approaches two" fixes CD large write at nB/2):
//
//                      RAID-0      RAID-5      Chained Decl.  RAID-x
//  Read bandwidth      nB          (n-1)B      nB             nB
//  Large-write bw      nB          (n-1)B/?    nB/2           nB
//  Small-write bw      nB          nB/4        nB/2           nB
//  Large-read time     mR/n        mR/(n-1)    mR/n           mR/n
//  Small-read time     R           R           R              R
//  Large-write time    mW/n        mW/(n-1)    2mW/n          mW/n + mW/(n(n-1))
//  Small-write time    W           R+W         W              W
//  Fault coverage      none        1 disk      n/2 disks      1 disk/mirror group
//
// (RAID-5 large writes are full-stripe: (n-1) data blocks per stripe of n
// disks, hence (n-1)B bandwidth and mW/(n-1) time.  RAID-5 small writes
// pay the 4-op read-modify-write: nB/4 and R+W.  RAID-x's extra
// mW/(n(n-1)) term is the clustered background image write: every disk
// absorbs 1/(n-1) extra sequential traffic.)
#pragma once

#include <string>

#include "sim/time.hpp"

namespace raidx::analytic {

enum class Arch { kRaid0, kRaid5, kChained, kRaidX };

const char* arch_name(Arch a);

struct ModelParams {
  int n = 16;                 // disks in the array
  double disk_bw_mbs = 18.0;  // B: bandwidth per disk
  std::uint64_t m = 2048;     // blocks per file
  sim::Time r = sim::milliseconds(12.0);  // average block read time
  sim::Time w = sim::milliseconds(13.0);  // average block write time
};

/// Max aggregate bandwidth (MB/s).
double read_bandwidth(Arch a, const ModelParams& p);
double large_write_bandwidth(Arch a, const ModelParams& p);
double small_write_bandwidth(Arch a, const ModelParams& p);

/// Parallel access times.
sim::Time large_read_time(Arch a, const ModelParams& p);
sim::Time small_read_time(Arch a, const ModelParams& p);
sim::Time large_write_time(Arch a, const ModelParams& p);
sim::Time small_write_time(Arch a, const ModelParams& p);

/// Human-readable maximum fault coverage.
std::string fault_coverage(Arch a, const ModelParams& p);

}  // namespace raidx::analytic
