#include "wan/link.hpp"

#include <algorithm>
#include <cstdio>

namespace raidx::wan {

Link::Link(sim::Simulation& sim, int id, int site_a, int site_b,
           LinkParams p)
    : sim_(sim), id_(id), site_a_(site_a), site_b_(site_b), params_(p) {
  pipe_[0] = std::make_unique<sim::Resource>(sim, 1);
  pipe_[1] = std::make_unique<sim::Resource>(sim, 1);
}

sim::Time Link::serialization_time(std::uint64_t chunk_bytes) const {
  return static_cast<sim::Time>(static_cast<double>(chunk_bytes) /
                                (current_mbs() * 1e6) * 1e9);
}

sim::Task<bool> Link::transfer(int from_site, std::uint64_t bytes,
                               obs::TraceContext ctx) {
  const int dir = from_site == site_a_ ? 0 : 1;
  const int lane = 2 * id_ + dir;
  const std::uint64_t total = bytes + params_.header_bytes;
  const std::uint64_t window = std::max<std::uint64_t>(1, params_.window_bytes);
  std::uint64_t sent = 0;
  while (sent < total) {
    if (!up_) {
      ++stats_[dir].drops;
      co_return false;
    }
    const std::uint64_t chunk = std::min(window, total - sent);
    depth_rec_[dir].record(sim_, obs::Track::kWan, lane, ++queue_depth_[dir]);
    auto guard = co_await pipe_[dir]->acquire();
    const sim::Time start = sim_.now();
    obs::Span span = obs::trace_span(sim_, ctx, "wan.window",
                                     obs::Track::kWan, lane,
                                     obs::SpanArgs{}
                                         .tag("link", id_)
                                         .tag("dir", dir)
                                         .tag("bytes",
                                              static_cast<std::int64_t>(chunk)));
    co_await sim_.delay(serialization_time(chunk));
    guard.release();
    depth_rec_[dir].record(sim_, obs::Track::kWan, lane, --queue_depth_[dir]);
    busy_rec_[dir].record(sim_, obs::Track::kWan, lane, start, sim_.now());
    stats_[dir].busy += sim_.now() - start;
    if (!up_) {
      // Partitioned mid-serialization: the frames never made it across.
      ++stats_[dir].drops;
      co_return false;
    }
    sent += chunk;
    ++stats_[dir].windows;
    stats_[dir].bytes += chunk;
    if (sent < total) {
      // The next window may not start before this one's ack returns --
      // one RTT after its first byte hit the wire.  max(RTT, W/bw) per
      // window is exactly the min(bw, W/RTT) flow limit.
      const sim::Time ack_at = start + params_.rtt;
      if (ack_at > sim_.now()) co_await sim_.delay(ack_at - sim_.now());
      if (!up_) {
        ++stats_[dir].drops;
        co_return false;
      }
    } else {
      // Last window: delivered one-way propagation after its last byte.
      co_await sim_.delay(params_.rtt / 2);
      if (!up_) {
        ++stats_[dir].drops;
        co_return false;
      }
    }
  }
  ++stats_[dir].transfers;
  co_return true;
}

void Link::set_up(bool up) {
  if (up == up_) return;
  up_ = up;
  char detail[48];
  std::snprintf(detail, sizeof(detail), "link=%d", id_);
  if (!up) {
    ++partitions_;
    up_trigger_ = std::make_unique<sim::Trigger>(sim_);
    obs::log_event(sim_, "wan.link_down", detail);
  } else {
    if (up_trigger_) up_trigger_->set();
    up_trigger_.reset();
    obs::log_event(sim_, "wan.link_up", detail);
  }
}

void Link::set_brownout(double bw_mbs) {
  char detail[64];
  if (bw_mbs > 0.0) {
    ++brownouts_;
    std::snprintf(detail, sizeof(detail), "link=%d bw=%.1f", id_, bw_mbs);
    obs::log_event(sim_, "wan.link_brownout", detail);
  } else {
    std::snprintf(detail, sizeof(detail), "link=%d", id_);
    obs::log_event(sim_, "wan.link_brownout_healed", detail);
  }
  brownout_mbs_ = bw_mbs;
}

sim::Task<> Link::wait_up() {
  while (!up_) {
    // The trigger is replaced on every down transition; re-check after
    // each wake in case the link flapped before we ran.
    sim::Trigger* t = up_trigger_.get();
    if (t == nullptr) break;
    co_await t->wait();
  }
}

}  // namespace raidx::wan
