// Model validation: does the simulated array deliver Table 2's *ratios*
// when the analytic model's assumptions hold?
//
// Table 2 assumes the disks are the only bottleneck.  We build a cluster
// whose network and CPUs are effectively free, drive each architecture to
// disk saturation with deep windows, and compare measured bandwidth ratios
// (relative to RAID-0) against the closed-form predictions:
//
//            reads        large writes    small writes
//   RAID-5   (n-1)/n      (n-1)/n *       1/4
//   CD/10    1            1/2             1/2
//   RAID-x   1            ~1 (sustained: n/(n+1))   ~1
//
// (*with full-stripe aggregation enabled, as the model assumes.)
#include <cstdio>

#include "analytic/model.hpp"
#include "bench_util.hpp"
#include "sim/stats.hpp"
#include "workload/parallel_io.hpp"

namespace {

using namespace raidx;
using bench::World;
using workload::Arch;
using workload::IoOp;
using workload::ParallelIoConfig;

cluster::ClusterParams disk_bound_cluster() {
  auto p = bench::perf_trojans();
  // Make everything except the disks effectively free.
  p.net.link_mbs = 10'000.0;
  p.net.per_message_overhead = sim::microseconds(1);
  p.net.switch_latency = sim::microseconds(1);
  p.node.cpu_op_overhead = sim::microseconds(1);
  p.node.cpu_ns_per_byte = 0.05;
  return p;
}

double saturated(Arch arch, IoOp op, bool small) {
  raid::EngineParams ep;
  // Window 1: with 16 clients each keeping one stripe in flight, every
  // disk stays busy but queues interleave uniformly -- deeper windows
  // make throughput depend on queue-adjacency luck (whether a stream's
  // next op lands sequentially), which the closed form knows nothing
  // about.
  ep.read_window = 1;
  ep.write_window = 1;
  ep.raid5_full_stripe_writes = !small;  // the model's large-write regime
  ep.xor_ns_per_byte = 0.05;
  World world(disk_bound_cluster(), arch, ep);
  ParallelIoConfig cfg;
  cfg.clients = 16;
  cfg.op = op;
  if (small) {
    cfg.bytes_per_op = 32ull << 10;
    cfg.ops_per_client = 64;
    cfg.scattered = true;
  } else {
    cfg.bytes_per_op = 64ull << 20;
    cfg.ops_per_client = 1;
  }
  const auto r = workload::run_parallel_io(*world.engine, cfg);
  // Sustained: charge RAID-x's background image traffic too, so the
  // comparison against the always-synchronous levels is apples-to-apples.
  return r.sustained_mbs;
}

}  // namespace

int main() {
  std::printf(
      "Model validation: measured bandwidth ratios vs Table 2 predictions\n"
      "(disk-bound cluster: free network/CPU, 16 clients, window 1; "
      "ratios are vs RAID-0)\n\n");

  struct Row {
    const char* name;
    IoOp op;
    bool small;
    double predict_r5, predict_cd, predict_rx;
  };
  const double n = 16.0;
  const Row rows[] = {
      {"large read", IoOp::kRead, false, (n - 1) / n, 1.0, 1.0},
      {"large write", IoOp::kWrite, false, (n - 1) / n, 0.5, n / (n + 1)},
      {"small write", IoOp::kWrite, true, 0.25, 0.5, 0.5},
  };
  // RAID-x small writes sustain data + one scattered image per block =
  // the same 2-op cost as CD, hence 1/2 in the sustained metric; the
  // *foreground* metric is where OSM's deferral shows (see ablation_osm).

  sim::TablePrinter table({"op", "RAID-5 meas", "RAID-5 pred",
                           "RAID-10 meas", "RAID-10 pred", "RAID-x meas",
                           "RAID-x pred"});
  for (const Row& row : rows) {
    const double r0 = saturated(Arch::kRaid0, row.op, row.small);
    const double r5 = saturated(Arch::kRaid5, row.op, row.small);
    const double cd = saturated(Arch::kRaid10, row.op, row.small);
    const double rx = saturated(Arch::kRaidX, row.op, row.small);
    auto ratio = [&](double v) { return bench::mbs(v / r0); };
    table.add_row({row.name, ratio(r5), bench::mbs(row.predict_r5),
                   ratio(cd), bench::mbs(row.predict_cd), ratio(rx),
                   bench::mbs(row.predict_rx)});
  }
  table.print();
  std::printf(
      "\nReads and RAID-5 match the op-count algebra closely.  The two\n"
      "systematic residuals are both seek effects the closed form ignores:\n"
      "chained declustering lands below its nB/2 because every mirror\n"
      "write adds a long seek into the far mirror zone (the paper's\n"
      "scattered-mirror critique is *stronger* once seeks are charged),\n"
      "and RAID-x lands below n/(n+1) because each stripe's clustered\n"
      "image run still pays one seek+rotation to reach the image zone.\n");
  return 0;
}
