// Single-disk spindle model: timing, byte storage, and fault injection.
//
// Timing follows the classic mechanical decomposition (controller overhead +
// seek + rotational latency + media transfer) with sequential-access
// detection: a request starting where the previous one ended pays neither
// seek nor rotational latency.  That asymmetry is what makes RAID-x's
// *clustered* mirror images (one long sequential background write) cheaper
// than chained declustering's scattered mirror writes, so it is the single
// most important property of this model.
//
// The functional plane (byte storage, checksums, fault injection, the
// rebuild frontier) lives in disk::Device, shared with flash::SsdDevice;
// this class contributes only the mechanical timing.  Stored bytes let the
// test suite verify layout correctness (round trips, degraded reads,
// rebuilds) rather than timing alone.  Unwritten blocks read as zeroes,
// like a fresh disk.
#pragma once

#include <cstddef>
#include <cstdint>

#include "disk/device.hpp"
#include "disk/scsi_bus.hpp"
#include "obs/obs.hpp"
#include "sim/event_queue.hpp"
#include "sim/resource.hpp"
#include "sim/task.hpp"

namespace raidx::disk {

/// Parameters modeled on a 10 GB, 7200 rpm Ultra-SCSI disk of the Trojans
/// cluster era (1999).
struct DiskParams {
  std::uint32_t block_bytes = 4096;
  std::uint64_t total_blocks = 2'621'440;  // 10 GB of 4 KB blocks
  double media_rate_mbs = 18.0;
  double rpm = 7200.0;
  sim::Time track_to_track_seek = sim::milliseconds(1.0);
  sim::Time full_stroke_seek = sim::milliseconds(16.0);
  sim::Time controller_overhead = sim::microseconds(300);
  /// When false, write_data discards contents and read_data returns zeros.
  /// Timing is unaffected; large performance sweeps use this so simulating
  /// gigabytes of traffic does not allocate gigabytes of host memory.
  bool store_data = true;

  sim::Time avg_rotational_latency() const {
    return sim::seconds(60.0 / rpm / 2.0);
  }

  DeviceGeometry geometry() const {
    return DeviceGeometry{block_bytes, total_blocks, store_data};
  }
};

class Disk : public Device {
 public:
  Disk(sim::Simulation& sim, DiskParams params, int id,
       ScsiBus* bus = nullptr);

  sim::Task<> io(IoKind kind, std::uint64_t block, std::uint32_t nblocks,
                 IoPriority prio = IoPriority::kForeground,
                 obs::TraceContext ctx = {}) override;

  DeviceClass device_class() const override { return DeviceClass::kHdd; }
  double nominal_rate_mbs() const override { return params_.media_rate_mbs; }

  /// Replace with a blank disk (rebuild then restores contents).
  void replace() override;

  const DiskParams& params() const { return params_; }

  sim::Time busy_time() const override { return queue_.busy_time(); }
  std::size_t queue_depth() const override { return queue_.queued(); }

  /// Pure timing helper (no queueing): service time of one request given
  /// the head position; exposed for the analytic model and unit tests.
  sim::Time service_time(std::uint64_t block, std::uint32_t nblocks,
                         bool sequential) const;

 private:
  sim::Time seek_time(std::uint64_t from, std::uint64_t to) const;

  sim::Simulation& sim_;
  DiskParams params_;
  ScsiBus* bus_;
  sim::Resource queue_;  // the disk arm: capacity 1, 2 priority classes
  obs::BusyRecorder busy_rec_;
  obs::DepthRecorder depth_rec_;
  std::uint64_t head_pos_ = 0;
};

}  // namespace raidx::disk
