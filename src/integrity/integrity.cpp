#include "integrity/integrity.hpp"

#include <algorithm>
#include <cstdio>

#include "obs/obs.hpp"

namespace raidx::integrity {

namespace {

std::string block_detail(int disk, std::uint64_t offset) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "disk=%d block=%llu", disk,
                static_cast<unsigned long long>(offset));
  return buf;
}

}  // namespace

IntegrityPlane::IntegrityPlane(raid::ArrayController& engine,
                               IntegrityParams params)
    : engine_(engine),
      fabric_(engine.fabric()),
      cluster_(fabric_.cluster()),
      sim_(cluster_.sim()),
      params_(params) {
  // Checksums exist from this instant: snapshot every block already on the
  // media (preloads) and maintain them on the write path from here on.
  for (int d = 0; d < cluster_.total_disks(); ++d) {
    cluster_.disk(d).enable_integrity();
  }
  fabric_.set_integrity(this);
  if (params_.scrub) {
    if (params_.scrub_rate_mbs > 0) {
      const double bytes_per_sec = params_.scrub_rate_mbs * 1e6;
      const double burst =
          static_cast<double>(params_.scrub_chunk_blocks) *
          static_cast<double>(cluster_.geometry().block_bytes) * 4.0;
      throttle_ =
          std::make_unique<sim::TokenBucket>(sim_, bytes_per_sec, burst);
    }
    sim_.spawn(scrub_loop());
  }
}

IntegrityPlane::~IntegrityPlane() { fabric_.set_integrity(nullptr); }

void IntegrityPlane::note_corruption_injected(int disk, std::uint64_t block) {
  ++stats_.injected;
  if (injected_.try_emplace(key(disk, block), sim_.now()).second) {
    ++undetected_;
  }
  // A live fault flips the daemon into attention mode: sweep back-to-back
  // until everything injected is found (or reconciled away).  Without the
  // daemon there is nothing to wake -- detection then rides verify-reads.
  if (params_.scrub && !attention_active_) {
    attention_active_ = true;
    sim_.spawn(attention_loop());
  }
}

void IntegrityPlane::on_corruption_found(int disk, std::uint64_t offset,
                                         bool by_scrub) {
  const std::uint64_t k = key(disk, offset);
  if (!pending_repair_.insert(k).second) return;  // already queued/verdicted
  ++stats_.detected;
  if (by_scrub) {
    ++stats_.detected_by_scrub;
  } else {
    ++stats_.detected_by_read;
  }
  obs::log_event(sim_, "integrity.detected",
                 block_detail(disk, offset) +
                     (by_scrub ? " by=scrub" : " by=read"));
  const auto it = injected_.find(k);
  if (it != injected_.end()) {
    stats_.mttd_ns.push_back(sim_.now() - it->second);
    injected_.erase(it);
    if (undetected_ > 0) --undetected_;
  }
  // Error-rate escalation: a disk shedding corrupt blocks is dying, not
  // unlucky -- hand it to the whole-disk recovery machinery (hot spare +
  // rebuild) instead of playing block-repair whack-a-mole.
  if (params_.fail_threshold > 0) {
    const int errors = ++disk_errors_[disk];
    disk::Device& d = cluster_.disk(disk);
    if (errors >= params_.fail_threshold && !d.failed()) {
      ++stats_.escalations;
      obs::log_event(sim_, "integrity.escalated", block_detail(disk, offset));
      pending_repair_.erase(k);  // the rebuild sweep rewrites every block
      d.fail();
      fabric_.notify_disk_failure(disk);
      return;
    }
  }
  sim_.spawn(repair_task(disk, offset));
}

sim::Task<> IntegrityPlane::repair_task(int disk_id, std::uint64_t offset) {
  const std::uint64_t k = key(disk_id, offset);
  const int client = cluster_.geometry().node_of(disk_id);
  try {
    bool ok = false;
    if (!cluster_.disk(disk_id).failed()) {
      ok = co_await engine_.repair_block(client, disk_id, offset);
    }
    if (!ok && !cluster_.disk(disk_id).failed() &&
        !cluster_.disk(disk_id).has_checksum(offset)) {
      // No redundancy path (RAID-0, or an unused image slot), but the
      // block was never written: its expected contents are known -- all
      // zeros -- so rewrite them directly.
      cdd::Reply w = co_await fabric_.write(
          client, disk_id, offset,
          block::Payload::zeros(cluster_.geometry().block_bytes),
          disk::IoPriority::kBackground);
      ok = w.ok;
    }
    if (ok) {
      ++stats_.repaired;
      obs::log_event(sim_, "integrity.repaired",
                     block_detail(disk_id, offset));
      pending_repair_.erase(k);
    } else if (cluster_.disk(disk_id).failed()) {
      // Whole-disk recovery owns this block now; the rebuild sweep will
      // rewrite it (and its checksum) wholesale.
      ++stats_.superseded;
      pending_repair_.erase(k);
    } else {
      ++stats_.unrecoverable;
      obs::log_event(sim_, "integrity.unrecoverable",
                     block_detail(disk_id, offset));
      stats_.unrecoverable_blocks.push_back({disk_id, offset});
      // The key stays in pending_repair_: every later sweep re-detects an
      // unrepaired block, and the verdict must not be re-counted.
    }
  } catch (...) {
    // The repair's own I/O failed (disk died mid-repair, RPC gave up).
    // Drop the key so a later re-detection retries against healthier state.
    ++stats_.repairs_failed;
    pending_repair_.erase(k);
  }
}

sim::Task<> IntegrityPlane::scrub_pass() {
  ++stats_.scrub_passes;
  const auto& geo = cluster_.geometry();
  const std::uint32_t bs = geo.block_bytes;
  const std::uint32_t chunk = std::max(1u, params_.scrub_chunk_blocks);
  for (int d = 0; d < cluster_.total_disks(); ++d) {
    disk::Device& dd = cluster_.disk(d);
    dd.enable_integrity();  // covers a spare swapped in after construction
    if (dd.failed()) continue;
    const int client =
        params_.scrub_node >= 0 ? params_.scrub_node : geo.node_of(d);
    for (std::uint64_t off = 0; off < geo.blocks_per_disk; off += chunk) {
      if (dd.failed()) break;  // died mid-sweep; next pass sees the spare
      const auto n = static_cast<std::uint32_t>(
          std::min<std::uint64_t>(chunk, geo.blocks_per_disk - off));
      if (!dd.readable(off, n)) continue;  // mid-rebuild tail
      if (throttle_ != nullptr) {
        co_await throttle_->acquire(static_cast<std::uint64_t>(n) * bs);
      }
      cdd::Reply r = co_await fabric_.scrub_read(client, d, off, n);
      // Mismatches were already routed through on_corruption_found by the
      // serving CDD; here we only account coverage.
      if (r.ok) stats_.blocks_scrubbed += n;
    }
  }
}

sim::Task<> IntegrityPlane::scrub_loop() {
  for (;;) {
    // daemon_delay: an idle scrubber never holds the simulation open.
    co_await sim_.daemon_delay(params_.scrub_interval);
    if (attention_active_) continue;  // attention passes are running
    co_await scrub_pass();
  }
}

sim::Task<> IntegrityPlane::attention_loop() {
  while (undetected_ > 0) {
    co_await scrub_pass();
    reconcile_injected();
    if (undetected_ > 0) co_await sim_.delay(params_.scrub_interval);
  }
  attention_active_ = false;
}

void IntegrityPlane::reconcile_injected() {
  for (auto it = injected_.begin(); it != injected_.end();) {
    const disk::Device& d = cluster_.disk(disk_of(it->first));
    if (d.failed() || !d.corrupted(block_of(it->first))) {
      ++stats_.overwritten;
      if (undetected_ > 0) --undetected_;
      it = injected_.erase(it);
    } else {
      ++it;
    }
  }
}

}  // namespace raidx::integrity
