#include "integrity/checksum.hpp"

#include <array>

namespace raidx::integrity {

namespace {

// Reflected CRC32C table (polynomial 0x1EDC6F41, reflected 0x82F63B78).
constexpr std::array<std::uint32_t, 256> make_table() {
  std::array<std::uint32_t, 256> t{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1) ? 0x82F63B78u ^ (c >> 1) : c >> 1;
    }
    t[i] = c;
  }
  return t;
}

constexpr std::array<std::uint32_t, 256> kTable = make_table();

/// Advance the raw CRC register by one zero input byte.  Linear in the
/// register over GF(2): the table lookup index depends only on register
/// bits when the input byte is zero.
constexpr std::uint32_t zero_byte_step(std::uint32_t reg) {
  return (reg >> 8) ^ kTable[reg & 0xFF];
}

/// 32x32 GF(2) matrix as 32 columns: column j is M applied to bit j.
using Mat = std::array<std::uint32_t, 32>;

std::uint32_t mat_apply(const Mat& m, std::uint32_t v) {
  std::uint32_t r = 0;
  for (int j = 0; v != 0; ++j, v >>= 1) {
    if (v & 1) r ^= m[static_cast<std::size_t>(j)];
  }
  return r;
}

Mat mat_mul(const Mat& a, const Mat& b) {
  Mat r;
  for (int j = 0; j < 32; ++j) {
    r[static_cast<std::size_t>(j)] =
        mat_apply(a, b[static_cast<std::size_t>(j)]);
  }
  return r;
}

Mat zero_byte_matrix() {
  Mat m;
  for (int j = 0; j < 32; ++j) {
    m[static_cast<std::size_t>(j)] = zero_byte_step(1u << j);
  }
  return m;
}

}  // namespace

std::uint32_t crc32c(std::uint32_t crc, std::span<const std::byte> data) {
  std::uint32_t reg = ~crc;
  for (std::byte b : data) {
    reg = (reg >> 8) ^
          kTable[(reg ^ static_cast<std::uint32_t>(b)) & 0xFF];
  }
  return ~reg;
}

std::uint32_t crc32c_extend_zeros(std::uint32_t crc, std::uint64_t n) {
  if (n == 0) return crc;
  // Work on the raw register (the ~ finalization is an affine wrapper).
  std::uint32_t reg = ~crc;
  Mat op = zero_byte_matrix();
  for (; n != 0; n >>= 1) {
    if (n & 1) reg = mat_apply(op, reg);
    if (n > 1) op = mat_mul(op, op);
  }
  return ~reg;
}

std::uint32_t crc_of(const block::Payload& p) {
  if (p.is_zeros()) return crc32c_zeros(p.size());
  return crc32c(p.bytes());
}

}  // namespace raidx::integrity
