// RAID-10 with chained declustering (Hsiao & DeWitt).
//
// Each disk's primary data is striped RAID-0 style over the top half of the
// array; its backup copy lives on the *next* node's disk of the same row
// (the "chain"), in the mirror zone (bottom half).  Unlike RAID-x, a write
// must synchronously update both copies, and the mirror copies of one
// stripe scatter over n different disks as n individual writes -- the two
// properties responsible for the parallel-write gap the paper measures
// (Table 2: nB/2 vs RAID-x's nB).
#pragma once

#include "raid/layout.hpp"

namespace raidx::raid {

class Raid10Layout : public Layout {
 public:
  using Layout::Layout;

  std::string name() const override { return "RAID-10"; }

  std::uint64_t logical_blocks() const override {
    return geo_.total_blocks() / 2;
  }

  block::PhysBlock data_location(std::uint64_t lba) const override;
  std::vector<block::PhysBlock> mirror_locations(
      std::uint64_t lba) const override;

  /// First physical block of the mirror zone on every disk.
  std::uint64_t mirror_zone_base() const { return geo_.blocks_per_disk / 2; }
};

}  // namespace raidx::raid
