file(REMOVE_RECURSE
  "CMakeFiles/ablation_osm.dir/ablation_osm.cpp.o"
  "CMakeFiles/ablation_osm.dir/ablation_osm.cpp.o.d"
  "ablation_osm"
  "ablation_osm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_osm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
