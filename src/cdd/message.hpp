// Wire messages exchanged between cooperative disk drivers.
#pragma once

#include <cstdint>
#include <vector>

#include "block/payload.hpp"
#include "disk/disk.hpp"
#include "obs/obs.hpp"
#include "sim/channel.hpp"

namespace raidx::cdd {

/// Fixed framing cost of every CDD message (headers, opcodes, addresses).
inline constexpr std::uint64_t kHeaderBytes = 128;

struct Reply {
  bool ok = true;
  /// Set (with ok = false) when the client-side watchdog gave up on the
  /// request: the server may be dead, partitioned, or just slow.  Never
  /// set by a server -- a real reply always clears it.
  bool timed_out = false;
  block::Payload data;  // read payload
  /// Physical blocks that failed checksum verification (scrub reads: the
  /// data still ships, ok stays true, and the bad offsets are reported
  /// here for the repair machinery).  Not counted in wire_bytes(): a real
  /// driver packs per-block status bits into existing header slack.
  std::vector<std::uint64_t> bad_blocks;

  std::uint64_t wire_bytes() const { return kHeaderBytes + data.size(); }
};

struct Request {
  enum class Op : std::uint8_t {
    kRead,      // block read from a remote-managed disk
    kWrite,     // block write
    kLock,      // acquire a lock-group write lock (to its home manager)
    kUnlock,    // release it
    kLockSync,  // one-way lock-table replication update
    kProbe,     // health query (node liveness / disk state); no media I/O
  };

  Op op = Op::kRead;
  int from = -1;                 // requesting node
  int disk = -1;                 // global disk id (read/write)
  std::uint64_t offset = 0;      // physical block offset on that disk
  std::uint32_t nblocks = 0;
  disk::IoPriority prio = disk::IoPriority::kForeground;
  /// Force checksum verification of this read regardless of the fabric's
  /// verify-reads policy (the scrub daemon's sweep reads).  A verify-only
  /// mismatch is reported in Reply.bad_blocks with ok left true; ordinary
  /// reads that fail verification come back ok = false instead, so the
  /// client's degraded path re-fetches from redundancy.
  bool verify = false;
  block::Payload payload;  // write data
  /// Lock groups covered by one request -- the paper's "record in the
  /// lock-group table": a set of block groups granted to one client
  /// atomically.  All groups in one message share a home node.
  std::vector<std::uint64_t> lock_groups;
  std::uint64_t group = 0;  // single group (kLockSync)
  /// Lock requester token: unique per logical writer, NOT the node id --
  /// two processes on one node must still exclude each other.  0 is the
  /// "free" sentinel.
  std::uint64_t lock_owner = 0;
  sim::Oneshot<Reply>* reply = nullptr;  // null for one-way messages
  /// Nonzero when the request runs under a client-side timeout: the reply
  /// is then routed through the fabric's pending-RPC map (first of reply
  /// and watchdog wins; a late reply is dropped) instead of the raw slot
  /// pointer, which would dangle once the watchdog abandons the frame.
  std::uint64_t rpc_id = 0;
  /// Per-request overrides of CddParams request_timeout / max_retries;
  /// timeout 0 = use the fabric default, retries -1 likewise.  Not
  /// counted in wire_bytes(): policy lives on the client, not the wire.
  sim::Time timeout = 0;
  int retries = -1;
  /// Trace identity carried across the node boundary, so the server-side
  /// handling spans nest under the originating client request.  Not
  /// counted in wire_bytes(): trace ids ride in existing header slack.
  obs::TraceContext ctx{};

  std::uint64_t wire_bytes() const {
    return kHeaderBytes + payload.size() + 8 * lock_groups.size();
  }
};

}  // namespace raidx::cdd
