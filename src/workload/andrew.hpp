// Andrew benchmark (Section 5.2 / Fig. 6).
//
// The classic 5-phase file-system benchmark, run by N concurrent clients in
// private subtrees of one shared file system (the paper runs up to 32
// clients over each storage architecture):
//   1. MakeDir -- create the directory tree
//   2. Copy    -- copy the source files into it (many small writes)
//   3. ScanDir -- walk the tree, stat everything
//   4. ReadAll -- read every file
//   5. Compile -- read sources, burn CPU, write objects
// Phases are barrier-separated; the reported elapsed time of a phase spans
// from the barrier release to the last client's completion, matching the
// paper's "elapsed time vs number of clients" panels.
#pragma once

#include <cstdint>

#include "raid/controller.hpp"
#include "sim/time.hpp"

namespace raidx::workload {

struct AndrewConfig {
  int clients = 1;
  int dirs = 20;
  int files = 70;
  /// File sizes are uniform in [min,max] -- the original benchmark's small
  /// source files, which is what makes Copy a small-write storm.
  std::uint64_t min_file_bytes = 1024;
  std::uint64_t max_file_bytes = 24 * 1024;
  /// Compile-phase CPU burn per source byte (a 400 MHz-era compiler).
  double compile_ns_per_byte = 400.0;
  /// Node hosting no client (the NFS server), -1 for none.
  int exclude_node = -1;
  std::uint64_t seed = 7;
};

struct AndrewResult {
  sim::Time make_dir = 0;
  sim::Time copy_files = 0;
  sim::Time scan_dir = 0;
  sim::Time read_all = 0;
  sim::Time compile = 0;

  sim::Time total() const {
    return make_dir + copy_files + scan_dir + read_all + compile;
  }
};

/// Run the benchmark to completion on a fresh engine (formats a file
/// system on it first; formatting is setup, not measured).
AndrewResult run_andrew(raid::ArrayController& engine,
                        const AndrewConfig& config);

}  // namespace raidx::workload
