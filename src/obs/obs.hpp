// Cross-layer request tracing: per-request TraceContext threaded through
// the coroutine task chain, RAII spans at every layer boundary, Chrome
// trace-event JSON export, and event-fed utilization timelines.
//
// Invariants this file is built around:
//
//  * Observation never perturbs the simulation.  No function here awaits,
//    delays, or schedules; spans and timeline samples only *record*
//    sim.now() at points the instrumented code already reaches.  A traced
//    run therefore produces bit-identical simulated numbers to an
//    untraced one.
//
//  * Disabled means absent.  The whole substrate hangs off a single
//    `obs::Hub*` on sim::Simulation, null by default; every hook is a
//    pointer test on a hot-cache word.  Reference runs stay bit-identical
//    because no obs object even exists.
//
//  * Spans live in coroutine *bodies*, never in parameters.  A coroutine
//    frame (and its parameters) is destroyed when the task object is
//    reaped, which can be long after the body finished at a later
//    simulated time; body-local variables are destroyed exactly when the
//    body completes, which is the correct span end time.
//
// Context threading is explicit -- `obs::TraceContext ctx = {}` default
// arguments down the layer stack -- because interleaved coroutine
// resumption makes any ambient "current span" global stale after the
// first co_await.
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "obs/metrics.hpp"
#include "sim/event_queue.hpp"
#include "sim/time.hpp"

namespace raidx::obs {

/// Identity a request carries across layers (and across nodes inside a
/// cdd::Request).  trace == 0 means "not being traced".
struct TraceContext {
  std::uint64_t trace = 0;   // request identity; 0 = none
  std::uint64_t parent = 0;  // enclosing span id
  std::uint16_t depth = 0;   // nesting depth of the enclosing span

  bool active() const { return trace != 0; }
};

/// Which lane a span renders on in the Chrome trace.  kRequest spans are
/// async begin/end events grouped per trace id (the request flow view);
/// the rest are complete ("X") events on per-resource rows (the resource
/// occupancy view, e.g. one row per disk arm).
enum class Track : std::uint8_t {
  kRequest = 0,
  kDisk,    // idx = global disk id; span == arm occupancy
  kBus,     // idx = node id; SCSI bus transfer
  kNetTx,   // idx = sender node; TX port occupancy
  kNetRx,   // idx = receiver node; RX port occupancy
  kServer,  // idx = node id; CDD/NFS server-side handling
};

const char* track_name(Track t);

/// Up to six integer tags (node, disk, lba, ...).  Fixed-size by design:
/// no allocation on the record path.
struct SpanArgs {
  struct Tag {
    const char* key = nullptr;
    std::int64_t value = 0;
  };
  std::array<Tag, 6> tags{};
  std::uint8_t n = 0;

  SpanArgs& tag(const char* key, std::int64_t value) {
    if (n < tags.size()) tags[n++] = {key, value};
    return *this;
  }
};

/// One recorded span.  `end < 0` while still open.
struct SpanRecord {
  std::uint64_t id = 0;
  std::uint64_t trace = 0;
  std::uint64_t parent = 0;
  sim::Time begin = 0;
  sim::Time end = -1;
  const char* name = "";
  Track track = Track::kRequest;
  int idx = 0;
  std::uint16_t depth = 0;
  SpanArgs args;
};

/// Append-only span store.  Handles are indices into spans_, stable under
/// growth.  All ids are sequentially assigned, so two identically seeded
/// runs record identical span tables.
class Tracer {
 public:
  std::size_t begin_span(const TraceContext& parent, const char* name,
                         Track track, int idx, sim::Time now,
                         const SpanArgs& args);
  void end_span(std::size_t handle, sim::Time now);
  void add_tag(std::size_t handle, const char* key, std::int64_t value);
  TraceContext context_of(std::size_t handle) const;

  const std::vector<SpanRecord>& spans() const { return spans_; }
  std::uint64_t traces_started() const { return next_trace_; }

  /// Write the span table as Chrome trace-event JSON ("traceEvents"
  /// array format).  Spans still open are closed at `now`.  Returns false
  /// and fills *err if the file cannot be written.
  bool export_chrome(const std::string& path, sim::Time now,
                     std::string* err) const;

 private:
  std::vector<SpanRecord> spans_;
  std::uint64_t next_trace_ = 0;
  std::uint64_t next_span_ = 0;
};

/// Busy-time accumulation over fixed windows of simulated time.  Fed from
/// the same [acquire, release] intervals the spans record -- never from a
/// periodic sampler task, which would add simulation events and keep
/// sim.run() from draining.
class Timeline {
 public:
  explicit Timeline(sim::Time window) : window_(window) {}

  /// Credit the busy interval [begin, end) across the windows it overlaps.
  void add_busy(sim::Time begin, sim::Time end);

  sim::Time window() const { return window_; }
  /// Busy fraction per window, in [0, 1] (up to rounding of the final
  /// partial window).  Computed fresh from the accumulated busy time.
  std::vector<double> utilization() const;

 private:
  sim::Time window_;
  std::vector<double> busy_ns_;
};

/// Per-window maximum of a sampled value (queue depth).
class MaxTimeline {
 public:
  explicit MaxTimeline(sim::Time window) : window_(window) {}

  void sample(sim::Time at, std::int64_t value);
  const std::vector<std::int64_t>& maxima() const { return max_; }

 private:
  sim::Time window_;
  std::vector<std::int64_t> max_;
};

/// All timelines for a run, keyed by (track, index) so hot paths never
/// build strings.  JSON keys come out as "<track>.<index>".
class Timelines {
 public:
  explicit Timelines(sim::Time window = sim::milliseconds(250))
      : window_(window) {}

  Timeline& busy(Track track, int idx);
  MaxTimeline& depth(Track track, int idx);

  bool empty() const { return busy_.empty() && depth_.empty(); }
  sim::Time window() const { return window_; }

  /// {"window_ms":..., "busy":{"disk.000":[...], ...},
  ///  "depth":{"disk.000":[...], ...}}
  std::string json() const;

 private:
  sim::Time window_;
  std::map<std::pair<int, int>, Timeline> busy_;
  std::map<std::pair<int, int>, MaxTimeline> depth_;
};

/// The one object a Simulation points at when observability is on.
/// `tracing` gates span recording separately so benches can collect
/// metrics/timelines without paying for a span table.
class Hub {
 public:
  Tracer& tracer() { return tracer_; }
  Registry& registry() { return registry_; }
  Timelines& timelines() { return timelines_; }
  const Tracer& tracer() const { return tracer_; }
  const Registry& registry() const { return registry_; }
  const Timelines& timelines() const { return timelines_; }

  bool tracing = false;

 private:
  Tracer tracer_;
  Registry registry_;
  Timelines timelines_;
};

/// Body-local RAII span.  Inert (all-null) when tracing is off, in which
/// case ctx() passes the inbound context through unchanged.
class Span {
 public:
  Span() = default;
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;
  Span(Span&& o) noexcept { *this = std::move(o); }
  Span& operator=(Span&& o) noexcept {
    if (this != &o) {
      close();
      sim_ = o.sim_;
      tracer_ = o.tracer_;
      handle_ = o.handle_;
      ctx_ = o.ctx_;
      o.tracer_ = nullptr;
    }
    return *this;
  }
  ~Span() { close(); }

  /// Context for work nested under this span.
  const TraceContext& ctx() const { return ctx_; }
  /// Attach a tag discovered after the span opened (e.g. cache hit/miss).
  void tag(const char* key, std::int64_t value) {
    if (tracer_) tracer_->add_tag(handle_, key, value);
  }
  void close() {
    if (tracer_) {
      tracer_->end_span(handle_, sim_->now());
      tracer_ = nullptr;
    }
  }

 private:
  friend Span trace_span(sim::Simulation&, const TraceContext&, const char*,
                         Track, int, SpanArgs);
  sim::Simulation* sim_ = nullptr;
  Tracer* tracer_ = nullptr;
  std::size_t handle_ = 0;
  TraceContext ctx_{};
};

/// Open a span under `parent` if the simulation has a tracing Hub; mint a
/// fresh trace id when the parent context is empty (root spans).  Returns
/// an inert Span otherwise, so call sites need no branching.
inline Span trace_span(sim::Simulation& sim, const TraceContext& parent,
                       const char* name, Track track, int idx,
                       SpanArgs args = {}) {
  Span s;
  s.ctx_ = parent;
  Hub* hub = sim.hub();
  if (hub != nullptr && hub->tracing) {
    s.sim_ = &sim;
    s.tracer_ = &hub->tracer();
    s.handle_ =
        s.tracer_->begin_span(parent, name, track, idx, sim.now(), args);
    s.ctx_ = s.tracer_->context_of(s.handle_);
  }
  return s;
}

/// Timeline hooks: no-ops without a Hub.
inline void record_busy(sim::Simulation& sim, Track track, int idx,
                        sim::Time begin, sim::Time end) {
  if (Hub* hub = sim.hub()) hub->timelines().busy(track, idx).add_busy(begin, end);
}

inline void record_depth(sim::Simulation& sim, Track track, int idx,
                         std::int64_t value) {
  if (Hub* hub = sim.hub())
    hub->timelines().depth(track, idx).sample(sim.now(), value);
}

/// Cached variants for call sites that record millions of intervals on one
/// fixed (track, idx) lane: the std::map lookup inside Timelines::busy is
/// measurable there, and map references are stable, so each lane keeps its
/// Timeline pointer and revalidates only when the hub changes.
class BusyRecorder {
 public:
  void record(sim::Simulation& sim, Track track, int idx, sim::Time begin,
              sim::Time end) {
    Hub* hub = sim.hub();
    if (hub == nullptr) return;
    if (hub != hub_) {
      hub_ = hub;
      line_ = &hub->timelines().busy(track, idx);
    }
    line_->add_busy(begin, end);
  }

 private:
  Hub* hub_ = nullptr;
  Timeline* line_ = nullptr;
};

class DepthRecorder {
 public:
  void record(sim::Simulation& sim, Track track, int idx,
              std::int64_t value) {
    Hub* hub = sim.hub();
    if (hub == nullptr) return;
    if (hub != hub_) {
      hub_ = hub;
      line_ = &hub->timelines().depth(track, idx);
    }
    line_->sample(sim.now(), value);
  }

 private:
  Hub* hub_ = nullptr;
  MaxTimeline* line_ = nullptr;
};

}  // namespace raidx::obs
