#include "sim/stats.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdio>
#include <numeric>

namespace raidx::sim {

void LatencyRecorder::add(Time t) {
  samples_.push_back(t);
  total_ += t;
  sorted_ = false;
}

Time LatencyRecorder::min() const {
  if (samples_.empty()) return 0;
  return *std::min_element(samples_.begin(), samples_.end());
}

Time LatencyRecorder::max() const {
  if (samples_.empty()) return 0;
  return *std::max_element(samples_.begin(), samples_.end());
}

double LatencyRecorder::mean() const {
  if (samples_.empty()) return 0.0;
  return static_cast<double>(total_) / static_cast<double>(samples_.size());
}

Time LatencyRecorder::percentile(double q) const {
  if (samples_.empty()) return 0;
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
  q = std::clamp(q, 0.0, 1.0);
  std::size_t idx = static_cast<std::size_t>(
      q * static_cast<double>(samples_.size() - 1) + 0.5);
  return samples_[idx];
}

Time LatencyRecorder::quantile(double q) const {
  if (samples_.empty()) return 0;
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
  q = std::clamp(q, 0.0, 1.0);
  const double rank = q * static_cast<double>(samples_.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  if (lo + 1 >= samples_.size()) return samples_.back();
  const double frac = rank - static_cast<double>(lo);
  return samples_[lo] +
         static_cast<Time>(frac *
                               static_cast<double>(samples_[lo + 1] -
                                                   samples_[lo]) +
                           0.5);
}

void LatencyRecorder::clear() {
  samples_.clear();
  total_ = 0;
  sorted_ = false;
}

void Throughput::record(Time start, Time end, std::uint64_t bytes) {
  assert(end >= start);
  bytes_ += bytes;
  ++ops_;
  if (first_start_ < 0 || start < first_start_) first_start_ = start;
  if (end > last_end_) last_end_ = end;
}

double Throughput::mb_per_s() const {
  if (first_start_ < 0 || last_end_ <= first_start_) return 0.0;
  return bandwidth_mbs(bytes_, last_end_ - first_start_);
}

void Throughput::clear() {
  bytes_ = 0;
  ops_ = 0;
  first_start_ = -1;
  last_end_ = -1;
}

namespace {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        // All remaining control characters must be \u-escaped per RFC 8259.
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

void JsonWriter::add(const std::string& key, std::uint64_t v) {
  fields_.emplace_back(key, std::to_string(v));
}

void JsonWriter::add(const std::string& key, std::int64_t v) {
  fields_.emplace_back(key, std::to_string(v));
}

void JsonWriter::add(const std::string& key, double v) {
  // JSON has no literal for NaN or infinity; emit null so the artifact
  // stays parseable instead of producing `nan`/`inf` tokens.
  if (!std::isfinite(v)) {
    fields_.emplace_back(key, "null");
    return;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  fields_.emplace_back(key, buf);
}

void JsonWriter::add_raw(const std::string& key, std::string json) {
  fields_.emplace_back(key, std::move(json));
}

void JsonWriter::add(const std::string& key, const std::string& v) {
  fields_.emplace_back(key, "\"" + json_escape(v) + "\"");
}

void JsonWriter::add(const std::string& key, bool v) {
  fields_.emplace_back(key, v ? "true" : "false");
}

std::string JsonWriter::str() const {
  std::string out = "{";
  for (std::size_t i = 0; i < fields_.size(); ++i) {
    if (i) out += ", ";
    out += "\"" + json_escape(fields_[i].first) + "\": " + fields_[i].second;
  }
  out += "}";
  return out;
}

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TablePrinter::add_row(std::vector<std::string> cells) {
  assert(cells.size() == headers_.size());
  rows_.push_back(std::move(cells));
}

void TablePrinter::print() const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    width[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    std::printf("|");
    for (std::size_t c = 0; c < row.size(); ++c) {
      std::printf(" %-*s |", static_cast<int>(width[c]), row[c].c_str());
    }
    std::printf("\n");
  };
  print_row(headers_);
  std::printf("|");
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    std::printf("%s|", std::string(width[c] + 2, '-').c_str());
  }
  std::printf("\n");
  for (const auto& row : rows_) print_row(row);
}

std::string TablePrinter::fmt(double v, int precision) {
  // printf renders non-finite values in platform-dependent spellings
  // ("nan", "-nan(ind)", ...); normalize so tables stay diff-friendly.
  if (std::isnan(v)) return "nan";
  if (std::isinf(v)) return v > 0 ? "inf" : "-inf";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

}  // namespace raidx::sim
