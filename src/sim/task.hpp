// Lazy coroutine task used as the process abstraction of the simulator.
//
// Every concurrent activity in the simulated cluster -- a client issuing
// I/O, a cooperative-disk-driver server loop, a disk arm, a rebuild sweep --
// is a Task<> coroutine.  Tasks compose with `co_await child()` (the awaiting
// parent is resumed when the child runs to completion) and are driven at the
// top level by Simulation::spawn.
//
// Design notes (and why):
//  * Lazy start: a Task does nothing until awaited or spawned, so building a
//    pipeline of tasks has no side effects and ownership is unambiguous.
//  * Symmetric transfer in final_suspend avoids unbounded recursion when
//    long chains of children complete at the same instant.
//  * Exceptions propagate across co_await; a top-level task that throws
//    surfaces the exception from Simulation::run, never std::terminate.
#pragma once

#include <coroutine>
#include <exception>
#include <utility>

namespace raidx::sim {

namespace detail {

struct PromiseBase {
  std::coroutine_handle<> continuation{};
  std::exception_ptr exception{};

  struct FinalAwaiter {
    bool await_ready() const noexcept { return false; }
    template <typename Promise>
    std::coroutine_handle<> await_suspend(
        std::coroutine_handle<Promise> h) noexcept {
      auto& cont = h.promise().continuation;
      return cont ? cont : std::noop_coroutine();
    }
    void await_resume() const noexcept {}
  };

  std::suspend_always initial_suspend() noexcept { return {}; }
  FinalAwaiter final_suspend() noexcept { return {}; }
  void unhandled_exception() { exception = std::current_exception(); }
};

}  // namespace detail

/// A lazily-started coroutine producing a value of type T (or void).
template <typename T = void>
class [[nodiscard]] Task;

template <>
class [[nodiscard]] Task<void> {
 public:
  struct promise_type : detail::PromiseBase {
    Task get_return_object() {
      return Task{std::coroutine_handle<promise_type>::from_promise(*this)};
    }
    void return_void() noexcept {}
  };
  using Handle = std::coroutine_handle<promise_type>;

  Task() = default;
  explicit Task(Handle h) : handle_(h) {}
  Task(Task&& other) noexcept
      : handle_(std::exchange(other.handle_, nullptr)) {}
  Task& operator=(Task&& other) noexcept {
    if (this != &other) {
      destroy();
      handle_ = std::exchange(other.handle_, nullptr);
    }
    return *this;
  }
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  ~Task() { destroy(); }

  bool valid() const { return handle_ != nullptr; }
  bool done() const { return handle_ && handle_.done(); }

  /// Awaiting a task starts it and suspends the awaiter until it completes.
  auto operator co_await() && noexcept {
    struct Awaiter {
      Handle handle;
      bool await_ready() const noexcept { return !handle || handle.done(); }
      std::coroutine_handle<> await_suspend(
          std::coroutine_handle<> cont) noexcept {
        handle.promise().continuation = cont;
        return handle;
      }
      void await_resume() const {
        if (handle && handle.promise().exception) {
          std::rethrow_exception(handle.promise().exception);
        }
      }
    };
    return Awaiter{handle_};
  }

  /// Used by Simulation::spawn: release ownership of the frame.  The caller
  /// becomes responsible for destroying the handle once done.
  Handle release() { return std::exchange(handle_, nullptr); }

 private:
  void destroy() {
    if (handle_) {
      handle_.destroy();
      handle_ = nullptr;
    }
  }
  Handle handle_{};
};

template <typename T>
class [[nodiscard]] Task {
 public:
  struct promise_type : detail::PromiseBase {
    T value{};
    Task get_return_object() {
      return Task{std::coroutine_handle<promise_type>::from_promise(*this)};
    }
    template <typename U>
    void return_value(U&& v) {
      value = std::forward<U>(v);
    }
  };
  using Handle = std::coroutine_handle<promise_type>;

  Task() = default;
  explicit Task(Handle h) : handle_(h) {}
  Task(Task&& other) noexcept
      : handle_(std::exchange(other.handle_, nullptr)) {}
  Task& operator=(Task&& other) noexcept {
    if (this != &other) {
      destroy();
      handle_ = std::exchange(other.handle_, nullptr);
    }
    return *this;
  }
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  ~Task() { destroy(); }

  bool valid() const { return handle_ != nullptr; }
  bool done() const { return handle_ && handle_.done(); }

  auto operator co_await() && noexcept {
    struct Awaiter {
      Handle handle;
      bool await_ready() const noexcept { return !handle || handle.done(); }
      std::coroutine_handle<> await_suspend(
          std::coroutine_handle<> cont) noexcept {
        handle.promise().continuation = cont;
        return handle;
      }
      T await_resume() const {
        if (handle.promise().exception) {
          std::rethrow_exception(handle.promise().exception);
        }
        return std::move(handle.promise().value);
      }
    };
    return Awaiter{handle_};
  }

 private:
  void destroy() {
    if (handle_) {
      handle_.destroy();
      handle_ = nullptr;
    }
  }
  Handle handle_{};
};

}  // namespace raidx::sim
