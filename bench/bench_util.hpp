// Shared scaffolding for the table/figure reproduction harnesses.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <string>

#include "cache/cache_fabric.hpp"
#include "cdd/cdd.hpp"
#include "cluster/cluster.hpp"
#include "obs/collect.hpp"
#include "obs/obs.hpp"
#include "sim/event_queue.hpp"
#include "sim/stats.hpp"
#include "workload/engines.hpp"

namespace raidx::bench {

/// One self-contained simulated cluster + CDD fabric + engine.  Every data
/// point gets a fresh world so runs are independent and reproducible.  The
/// default cache (capacity 0) leaves the engine bit-identical to a
/// cacheless build; pass CacheParams to put a block cache in front.
struct World {
  explicit World(cluster::ClusterParams params, workload::Arch arch,
                 raid::EngineParams engine_params = {},
                 cache::CacheParams cache_params = {})
      : cluster(sim, params),
        fabric(cluster),
        cache(cluster, cache_params),
        engine(workload::make_engine(arch, fabric, engine_params)) {
    engine->attach_cache(&cache);
    // Metrics and timelines on, span tracing off: recording busy windows
    // never adds or reorders simulation events, so bench numbers are
    // identical to a hub-less run (only span tracing would grow memory
    // with run length, and benches do not need spans).
    sim.set_hub(&hub);
  }

  sim::Simulation sim;
  obs::Hub hub;
  cluster::Cluster cluster;
  cdd::CddFabric fabric;
  cache::CacheFabric cache;
  std::unique_ptr<raid::ArrayController> engine;
};

/// True when RAIDX_BENCH_SMOKE is set: benches shrink to a scale that
/// finishes in CI seconds while exercising every code path.  BENCH_*.json
/// records which mode produced it.
inline bool smoke() { return std::getenv("RAIDX_BENCH_SMOKE") != nullptr; }

/// Pick the full-scale value normally, the reduced one under smoke.
template <typename T>
inline T smoke_pick(T full, T reduced) {
  return smoke() ? reduced : full;
}

/// Version of the BENCH_*.json layout.  Bump when keys change meaning so
/// cross-PR trajectory tooling can tell schema drift from regressions.
/// v2: adds "smoke", and nested registry/timeline snapshots from the obs
/// layer ("obs_*" keys); every v1 key is unchanged.
/// v3: the obs registry snapshot gains the engine-internal counters
/// `sim.queue.*` and `sim.frame_pool.*`; every v2 key is unchanged and
/// every simulated result is bit-identical to v2.
/// v4: obs snapshots may carry the recovery-orchestration keys (`ha.*`
/// histograms/counters, `cdd.timeouts`/`cdd.retries*`/`cdd.late_replies`,
/// `net.messages_dropped`) -- but only in worlds that configure an
/// orchestrator or inject faults (the new bench/mttr report).  Fault-free
/// benches emit the exact v3 key set with bit-identical values.
/// v5: obs snapshots may carry the integrity keys (`integrity.*` counters,
/// the `integrity.mttd_ns` histogram, scrub-throttle counters) -- but only
/// in worlds that attach an IntegrityPlane (the new bench/scrub report).
/// Integrity-free benches emit the exact v4 key set and every simulated
/// result is bit-identical to v4; only the engine-internal
/// `sim.frame_pool.{fresh,reuses}` counters shift (coroutine frames grew
/// with the verify-on-read branch, moving a few frames across pool size
/// classes).
/// v6: obs snapshots may carry the open-loop traffic keys (`load.*`
/// counters/gauges and the `load.latency_ns` histograms) and the
/// multi-tenant QoS keys (`qos.tenant.*`) -- but only in worlds driven by
/// the open-loop tier (the new bench/saturation report).  Every histogram
/// in every registry snapshot additionally renders exact-rank interpolated
/// `p50_interp`/`p99_interp`/`p999_interp` keys, and cache-enabled worlds
/// gain `cache.directory_peak_{entries,sharers}`.  All pre-existing
/// simulated keys keep bit-identical values; as in v5, only the
/// engine-internal `sim.frame_pool.{fresh,reuses}` counters shift (the
/// admission hook grew the controller read/write coroutine frames, moving
/// a few frames across pool size classes).
/// v7: obs snapshots may carry the continuous-telemetry keys -- the
/// per-request attribution matrix (`attr.<read|write>.<lane>_ns` plus
/// count/total_ns/aborted counters) and the SLO monitor
/// (`slo.*` counters/gauges) -- but only in worlds that enable them
/// (bench/saturation); the saturation report also gains a selective-trace
/// capture section (`trace_*` keys) and writes the slow-request reservoir
/// to BENCH_saturation_traces.json.  All pre-existing simulated keys keep
/// bit-identical values; as in v5/v6, only the engine-internal
/// `sim.frame_pool.{fresh,reuses}` counters shift (the attribution root
/// grew the controller read/write coroutine frames).
/// v8: the engine-internal `sim.frame_pool.*` counters move OUT of the
/// gated registry snapshot into an unguarded informational "frame_pool"
/// section next to each obs block (they shift whenever any coroutine frame
/// changes size -- every engine change -- and were forcing baseline
/// regeneration every PR; bench_diff.py now always ignores them, like
/// wall_ms).  Sharded runs add `sim.shard.*`/`remote.*`/`shard.NNN.*` keys
/// and the bench/shard_scaling report.  All other simulated keys keep
/// bit-identical values.
/// v9: obs snapshots may carry the flash-device keys (`flash.NNN.*` FTL
/// counters and the `write_amp` gauge) -- but only for array slots the
/// device map populates with flash (the new bench/gc_tail report; spindles
/// export no flash keys).  Spindle-only benches emit the exact v8 key set
/// and every simulated result is bit-identical to v8: the disk::Device
/// extraction is a pure interface split, and the spindle implementation is
/// unchanged behind it.
/// v10: obs snapshots may carry the WAN federation keys (`site.NNN.*`
/// per-site registry merges, `wan.link.NNN.*` per-link counters, the
/// `wan.read.*`/`wan.write.*` hierarchy counters, and the `wan.repl.*`
/// mirror-pipeline keys) -- but only in worlds that build a
/// wan::Federation (the new bench/wan_replication report).  Single-site
/// benches emit the exact v9 key set with bit-identical values: the
/// controller's write-observer hook defaults to null and the open-loop
/// base_lba defaults to 0, so no event is added or reordered anywhere in
/// a non-federated run.
inline constexpr int kBenchSchemaVersion = 10;

/// Start a machine-readable report: every BENCH_*.json leads with the
/// schema version and bench name.
inline sim::JsonWriter bench_json(const std::string& bench) {
  sim::JsonWriter w;
  w.add("schema_version", kBenchSchemaVersion);
  w.add("bench", bench);
  w.add("smoke", smoke());
  return w;
}

/// Engine-internal frame-pool statistics as a small JSON object.  These
/// live OUTSIDE the registry snapshot (v8): they change with every
/// coroutine-frame size change, so bench_diff.py ignores them
/// unconditionally -- informational, never gated.
inline std::string frame_pool_json(const sim::Simulation& sim) {
  const sim::FramePool::Stats& fp = sim.frame_pool_stats();
  char buf[192];
  std::snprintf(buf, sizeof(buf),
                "{\"allocations\":%llu,\"reuses\":%llu,\"fresh\":%llu,"
                "\"oversize\":%llu,\"live\":%llu}",
                static_cast<unsigned long long>(fp.allocations),
                static_cast<unsigned long long>(fp.reuses),
                static_cast<unsigned long long>(fp.fresh),
                static_cast<unsigned long long>(fp.oversize),
                static_cast<unsigned long long>(fp.live));
  return buf;
}

/// Embed one world's metrics-registry snapshot and utilization/queue-depth
/// timelines under "<key>" -- per-disk and per-link counters, histogram
/// percentiles, and windowed busy fractions, all from the shared registry.
/// Pass an orchestrator and/or integrity plane to include their gated key
/// sections (`ha.*`, `integrity.*`).
inline void add_obs(sim::JsonWriter& w, const std::string& key, World& world,
                    const ha::Orchestrator* orch = nullptr,
                    const integrity::IntegrityPlane* integrity = nullptr) {
  obs::collect_cluster(world.hub.registry(), world.cluster, &world.fabric,
                       &world.cache, orch, integrity);
  w.add_raw(key, "{\"registry\":" + world.hub.registry().snapshot_json() +
                     ",\"timelines\":" + world.hub.timelines().json() +
                     ",\"frame_pool\":" + frame_pool_json(world.sim) + "}");
}

/// Append the block-cache counters (zeros when no cache was attached, so
/// the key set is stable across configurations).
inline void add_cache_counters(sim::JsonWriter& w,
                               const cache::CacheStats& s) {
  w.add("cache_hits", s.hits);
  w.add("cache_peer_hits", s.peer_hits);
  w.add("cache_misses", s.misses);
  w.add("cache_fills", s.fills);
  w.add("cache_writes_absorbed", s.writes_absorbed);
  w.add("cache_invalidations", s.invalidations);
  w.add("cache_flushes", s.flushes);
  w.add("cache_evictions", s.evictions);
  w.add("cache_hit_ratio", s.hit_ratio());
}

/// Write the report to BENCH_<bench>.json in the working directory.
inline void write_bench_json(const std::string& bench,
                             const sim::JsonWriter& w) {
  const std::string path = "BENCH_" + bench + ".json";
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "warning: cannot write %s\n", path.c_str());
    return;
  }
  out << w.str() << "\n";
}

/// The Trojans cluster with byte storage disabled (pure timing): the
/// perf sweeps move gigabytes and must not allocate them.
inline cluster::ClusterParams perf_trojans() {
  auto p = cluster::ClusterParams::trojans();
  p.disk.store_data = false;
  return p;
}

/// The paper-faithful engine configuration.  The paper's RAID-5 driver
/// checks parity (Table 1: reliability via "parity checks"; Section 5
/// attributes its overhead to "parity calculations"), so the figure
/// reproductions enable read-side parity verification; it only affects
/// the RAID-5 engine.
inline raid::EngineParams paper_engine() {
  raid::EngineParams p;
  p.verify_parity_on_read = true;
  return p;
}

inline std::string mbs(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2f", v);
  return buf;
}

}  // namespace raidx::bench
