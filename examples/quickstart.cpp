// Quickstart: build a simulated serverless cluster, pool its disks into a
// RAID-x array through the cooperative disk drivers, and do block I/O from
// any node.
//
//   $ ./examples/quickstart
//
// Walks through the core public API: Simulation -> Cluster -> CddFabric ->
// RaidxController, then a write/read round trip with timing.
#include <cstdio>

#include "cluster/cluster.hpp"
#include "raid/controller.hpp"
#include "sim/event_queue.hpp"

using namespace raidx;

namespace {

sim::Task<> demo(raid::RaidxController& array, sim::Simulation& sim) {
  const std::uint32_t bs = array.block_bytes();

  // 1 MB of application data, written from node 5 starting at block 100.
  std::vector<std::byte> payload(32 * bs);
  for (std::size_t i = 0; i < payload.size(); ++i) {
    payload[i] = static_cast<std::byte>(i * 2654435761u >> 24);
  }

  sim::Time t0 = sim.now();
  co_await array.write(/*client node=*/5, /*lba=*/100, payload);
  std::printf("write : %zu KB in %.2f ms (foreground; mirror images flush "
              "in the background)\n",
              payload.size() / 1024, sim::to_milliseconds(sim.now() - t0));

  // Read it back from a *different* node: the single I/O space makes every
  // disk addressable everywhere.
  std::vector<std::byte> back(payload.size());
  t0 = sim.now();
  co_await array.read(/*client node=*/11, 100, 32, back);
  std::printf("read  : %zu KB in %.2f ms from another node\n",
              back.size() / 1024, sim::to_milliseconds(sim.now() - t0));

  std::printf("verify: %s\n", back == payload ? "contents match" :
                                                "MISMATCH");
}

}  // namespace

int main() {
  std::printf("RAID-x quickstart -- orthogonal striping and mirroring on a "
              "simulated 16-node cluster\n\n");

  // The simulated world: 16 nodes, one 10 GB disk each, switched Fast
  // Ethernet -- the paper's Trojans cluster.
  sim::Simulation sim;
  cluster::Cluster cluster(sim, cluster::ClusterParams::trojans());

  // Cooperative disk drivers pool all 16 disks into a single I/O space.
  cdd::CddFabric fabric(cluster);

  // A RAID-x array over the SIOS.
  raid::RaidxController array(fabric);
  std::printf("array : %s, %llu logical blocks of %u KB (%.1f GB usable)\n",
              array.name().c_str(),
              static_cast<unsigned long long>(array.logical_blocks()),
              array.block_bytes() / 1024,
              static_cast<double>(array.logical_blocks()) *
                  array.block_bytes() / 1e9);

  sim.spawn(demo(array, sim));
  sim.run();

  std::printf("\ncluster counters: %llu local + %llu remote CDD requests\n",
              static_cast<unsigned long long>(fabric.local_requests()),
              static_cast<unsigned long long>(fabric.remote_requests()));
  return 0;
}
