#include "sim/resource.hpp"

#include <cassert>

namespace raidx::sim {

Resource::Resource(Simulation& sim, int capacity, int priority_levels)
    : sim_(sim), capacity_(capacity), waiters_(priority_levels) {
  assert(capacity > 0);
  assert(priority_levels > 0);
}

bool Resource::try_acquire() {
  if (in_use_ < capacity_) {
    note_busy_change();
    ++in_use_;
    return true;
  }
  return false;
}

void Resource::enqueue(int priority, Waiter* w) {
  assert(priority >= 0 &&
         static_cast<std::size_t>(priority) < waiters_.size());
  WaitQueue& q = waiters_[static_cast<std::size_t>(priority)];
  w->next = nullptr;
  if (q.tail) {
    q.tail->next = w;
  } else {
    q.head = w;
  }
  q.tail = w;
  ++q.count;
}

void Resource::release() {
  for (auto& q : waiters_) {
    if (q.head != nullptr) {
      // Hand the slot straight to the waiter: in_use_ is unchanged.  The
      // node lives in the waiter's frame, which stays suspended (and its
      // memory valid) until the scheduled resume fires.
      Waiter* w = q.head;
      q.head = w->next;
      if (q.head == nullptr) q.tail = nullptr;
      --q.count;
      sim_.schedule_resume(0, w->handle);
      return;
    }
  }
  note_busy_change();
  --in_use_;
  assert(in_use_ >= 0);
}

std::size_t Resource::queued() const {
  std::size_t total = 0;
  for (const auto& q : waiters_) total += q.count;
  return total;
}

Time Resource::busy_time() const {
  return busy_accum_ + static_cast<Time>(in_use_) * (sim_.now() - last_change_);
}

void Resource::note_busy_change() {
  busy_accum_ += static_cast<Time>(in_use_) * (sim_.now() - last_change_);
  last_change_ = sim_.now();
}

}  // namespace raidx::sim
