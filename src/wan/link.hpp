// Long-fat inter-site pipes: the WAN cost model under the federation tier.
//
// A Link joins two sites with a full-duplex path whose behavior follows
// the Kukol/Gray transcontinental-transfer report: throughput on a long
// fat network is NOT the pipe rate but min(bw, W/RTT) per flow, where W
// is the flow's in-flight window.  transfer() models exactly that: the
// payload is cut into window-sized chunks; each chunk serializes on the
// direction's shared capacity-1 pipe resource at the link's *current*
// rate (brownouts degrade it), and the next chunk may not start before
// the previous chunk's ack returns -- one RTT after its first byte.  A
// single flow therefore progresses one window per max(RTT, W/bw), i.e.
// throughput = W / max(RTT, W/bw) = min(bw, W/RTT), while contention
// between flows is still bounded by the shared pipe at bw.  Delivery
// completes one-way propagation (RTT/2) after the last byte serializes.
//
// Failure states:
//  * set_up(false) -- hard partition.  In-flight and new transfers fail
//    (the frames are lost; the caller sees `false` and owns retry
//    policy).  wait_up() parks a coroutine until the link heals, which is
//    how replication shippers sleep through a partition without polling.
//  * set_brownout(bw) -- degraded bandwidth (congestion, a flapping
//    circuit).  Transfers still succeed, just slower; 0 restores the
//    nominal rate.  Chunks already holding the pipe keep the rate they
//    were granted at -- determinism requires the cost of an event to be
//    fixed once scheduled.
//
// Observability: each direction keeps a `wan` busy timeline (pipe
// occupancy) and a queue-depth timeline (flows waiting for or holding the
// pipe) at idx = 2*link_id + direction, so Chrome traces grow one WAN row
// per direction next to the intra-site rows.  Determinism: like every
// other layer, recording never adds or reorders simulation events.
#pragma once

#include <cstdint>
#include <memory>

#include "obs/obs.hpp"
#include "sim/event_queue.hpp"
#include "sim/resource.hpp"
#include "sim/sync.hpp"
#include "sim/task.hpp"
#include "sim/time.hpp"

namespace raidx::wan {

struct LinkParams {
  /// Nominal pipe rate, MB/s.  WAN circuits are far below the intra-site
  /// Ethernet: the default models a dedicated OC-12-class long-haul path.
  double bandwidth_mbs = 60.0;
  /// Round-trip propagation (a transcontinental path is ~40-80 ms).
  sim::Time rtt = sim::milliseconds(40);
  /// Per-flow in-flight window, bytes.  Kept at the transfer protocol's
  /// socket-buffer size; a window below the bandwidth-delay product caps
  /// the flow at W/RTT regardless of the pipe rate.
  std::uint64_t window_bytes = std::uint64_t{1} << 20;
  /// Fixed framing per transfer (request header + ack).
  std::uint32_t header_bytes = 512;

  /// The pipe's bandwidth-delay product: the window that just fills it.
  std::uint64_t bdp_bytes() const {
    return static_cast<std::uint64_t>(bandwidth_mbs * 1e6 *
                                      sim::to_seconds(rtt));
  }
};

/// Per-direction transfer counters (direction 0 carries site_a -> site_b).
struct LinkDirStats {
  std::uint64_t transfers = 0;  // completed transfers
  std::uint64_t bytes = 0;      // payload+framing bytes delivered
  std::uint64_t windows = 0;    // window-sized chunks serialized
  std::uint64_t drops = 0;      // transfers lost to a partition
  sim::Time busy = 0;           // pipe occupancy
};

class Link {
 public:
  Link(sim::Simulation& sim, int id, int site_a, int site_b, LinkParams p);

  int id() const { return id_; }
  int site_a() const { return site_a_; }
  int site_b() const { return site_b_; }
  bool joins(int site) const { return site == site_a_ || site == site_b_; }
  int peer_of(int site) const { return site == site_a_ ? site_b_ : site_a_; }
  const LinkParams& params() const { return params_; }

  /// Carry `bytes` of payload (plus framing) from `from_site` to the
  /// other end.  Resolves true when the last byte lands; false when the
  /// link is partitioned before delivery completes.
  sim::Task<bool> transfer(int from_site, std::uint64_t bytes,
                           obs::TraceContext ctx = {});

  /// Hard partition state.  Healing resumes every wait_up() parker.
  void set_up(bool up);
  bool up() const { return up_; }

  /// Degrade to `bw_mbs` (brownout); 0 restores the nominal rate.
  void set_brownout(double bw_mbs);
  bool browned_out() const { return brownout_mbs_ > 0.0; }
  /// Effective rate new chunks serialize at.
  double current_mbs() const {
    return brownout_mbs_ > 0.0 ? brownout_mbs_ : params_.bandwidth_mbs;
  }

  /// Park until the link is up (immediately if it already is).
  sim::Task<> wait_up();

  const LinkDirStats& dir_stats(int dir) const { return stats_[dir & 1]; }
  std::uint64_t bytes_carried() const {
    return stats_[0].bytes + stats_[1].bytes;
  }
  std::uint64_t drops() const { return stats_[0].drops + stats_[1].drops; }
  std::uint64_t brownouts() const { return brownouts_; }
  std::uint64_t partitions() const { return partitions_; }

 private:
  sim::Time serialization_time(std::uint64_t chunk_bytes) const;

  sim::Simulation& sim_;
  int id_;
  int site_a_;
  int site_b_;
  LinkParams params_;
  bool up_ = true;
  double brownout_mbs_ = 0.0;  // 0 = nominal
  std::uint64_t brownouts_ = 0;
  std::uint64_t partitions_ = 0;
  /// One capacity-1 pipe per direction: serialization is FIFO, so frames
  /// from concurrent flows land in acquisition order (in-order delivery
  /// holds per flow AND per direction, brownout or not).
  std::unique_ptr<sim::Resource> pipe_[2];
  int queue_depth_[2] = {0, 0};
  LinkDirStats stats_[2];
  /// Re-armed each time the link goes down; set() on heal.
  std::unique_ptr<sim::Trigger> up_trigger_;
  obs::BusyRecorder busy_rec_[2];
  obs::DepthRecorder depth_rec_[2];
};

}  // namespace raidx::wan
