// Continuous telemetry: per-request latency attribution, an SLO monitor
// with burn-rate alerts, one ordered cluster event log, and a sim-time
// series scraper.  Everything here follows the src/obs ground rules
// (obs.hpp): no function awaits, delays, or reorders simulation events --
// the scraper's daemon wakeups ride the queue as daemon events, which
// never change the timestamps (or relative order) of foreground work --
// and disabled means absent: each facility hangs off the Hub as a null
// unique_ptr until explicitly enabled.
//
// Attribution decomposes a request's end-to-end time into exclusive
// per-layer lanes.  The slot a request owns records, at every lane
// enter/exit, the time elapsed since its previous transition, charged to
// the *deepest currently-active* lane (disk.service outranks disk.queue
// outranks net.service ... outranks ctl.service, which is active for the
// whole request).  Every nanosecond between open and close is therefore
// charged to exactly one lane, so per-lane sums reconcile with end-to-end
// latency exactly -- not statistically.  Slot references are generation-
// checked: deferred background work (RAID-x image flushes) carrying a
// retired request's reference becomes a no-op instead of corrupting a
// recycled slot.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "sim/event_queue.hpp"
#include "sim/task.hpp"
#include "sim/time.hpp"

namespace raidx::obs {

/// Attribution lanes, ranked: when several are active the deepest (highest
/// value) owns the elapsed time.  kCtlService is the request's own lane,
/// active from open to close, so the partition is total.
enum class Lane : std::uint8_t {
  kCtlService = 0,  // controller logic not covered by any deeper lane
  kCtlQueue,        // admission gate + chunk-window waits
  kCacheService,    // cache fabric lookup/coherence work
  kCddQueue,        // client-side CDD request (RPC issue to reply)
  kCddService,      // server-side CDD handling
  kNetQueue,        // network transmit (port wait + flight)
  kNetService,      // TX/RX port occupancy + SCSI bus transfer
  kDiskQueue,       // disk request queued behind the arm
  kDiskService,     // arm busy on the request
};
inline constexpr std::size_t kNumLanes = 9;

const char* lane_name(Lane lane);  // "ctl.service", "disk.queue", ...

/// Request-type x lane attribution matrix plus the per-request slot table.
class Attribution {
 public:
  struct TypeTotals {
    std::array<std::uint64_t, kNumLanes> lane_ns{};
    std::uint64_t count = 0;       // completed requests folded in
    std::uint64_t total_ns = 0;    // their end-to-end time (== sum of lanes)
    std::uint64_t aborted = 0;     // failed/shed requests folded in
    std::uint64_t aborted_ns = 0;  // their end-to-end time (also in lanes)
  };

  /// Open a slot for a request starting now; returns a reference to stamp
  /// into the request's TraceContext (never 0).
  std::uint64_t open(bool is_write, sim::Time now);
  void enter(std::uint64_t ref, Lane lane, sim::Time now);
  void exit(std::uint64_t ref, Lane lane, sim::Time now);
  /// Fold the slot into the matrix and recycle it.  Stale references (a
  /// second close, or a reference that never resolved) are no-ops.
  void close(std::uint64_t ref, sim::Time now, bool completed);

  const TypeTotals& reads() const { return totals_[0]; }
  const TypeTotals& writes() const { return totals_[1]; }
  /// Slots currently open (tests assert 0 after a drained run).
  std::size_t live_slots() const { return live_; }

  /// Publish `attr.<read|write>.<lane>_ns` + count/total_ns/aborted keys.
  void export_metrics(Registry& reg) const;

 private:
  struct Slot {
    sim::Time last = 0;  // instant of the previous lane transition
    std::array<std::uint32_t, kNumLanes> depth{};
    std::array<sim::Time, kNumLanes> ns{};
    std::uint32_t gen = 1;
    std::uint8_t type = 0;  // 0 = read, 1 = write
    bool in_use = false;
  };

  Slot* resolve(std::uint64_t ref);
  static void charge(Slot& s, sim::Time now);

  std::vector<Slot> slots_;
  std::vector<std::uint32_t> free_;
  std::size_t live_ = 0;
  TypeTotals totals_[2];
};

/// One ordered cluster event: faults, detections, failovers, rebuilds,
/// scrub verdicts, QoS sheds, SLO breaches -- a single append-ordered
/// stream so cross-subsystem causality (fault -> detection -> breach ->
/// recovery) is readable from one place.
struct ClusterEvent {
  sim::Time at = 0;
  std::uint64_t seq = 0;  // append order; ties on `at` stay ordered
  std::string kind;       // dotted, e.g. "ha.detected", "slo.breach"
  std::string detail;
};

class EventLog {
 public:
  void emit(sim::Time at, std::string kind, std::string detail);

  const std::vector<ClusterEvent>& events() const { return events_; }
  /// First event of `kind`, or nullptr.
  const ClusterEvent* first(const std::string& kind) const;
  std::uint64_t count(const std::string& kind) const;

  /// [{"at_ns":..., "seq":..., "kind":"...", "detail":"..."}, ...]
  std::string json() const;

 private:
  std::vector<ClusterEvent> events_;
};

/// Latency service-level objective evaluated over fixed windows of
/// simulated time.  Evaluation is lazy -- windows are rolled forward from
/// completion timestamps, never from a timer -- so an attached monitor
/// adds zero events to the simulation.  A window whose violation fraction
/// burns the error budget at >= `burn_alert`x fires a breach event; a
/// later window back under budget (burn < 1) emits the recovery.
struct SloConfig {
  sim::Time latency_target = sim::milliseconds(50);
  /// Fraction of requests that must complete under the target (the error
  /// budget is 1 - objective).
  double objective = 0.999;
  sim::Time window = sim::milliseconds(500);
  double burn_alert = 2.0;
};

struct SloStats {
  std::uint64_t requests = 0;
  std::uint64_t violations = 0;  // over-target or failed
  std::uint64_t windows = 0;     // evaluated (non-final) windows
  std::uint64_t breaches = 0;
  std::uint64_t recoveries = 0;
  double worst_burn = 0.0;
  bool breached = false;  // currently out of SLO
};

class SloMonitor {
 public:
  /// `log` may be null (counters only, no events).
  SloMonitor(EventLog* log, SloConfig cfg) : log_(log), cfg_(cfg) {}

  /// One finished request: `ok` false for real I/O failures (always a
  /// violation).  Admission turn-aways are not reported here -- the SLO
  /// covers served traffic.
  void note_request(sim::Time now, sim::Time latency, bool ok);

  const SloConfig& config() const { return cfg_; }
  const SloStats& stats() const { return stats_; }

  /// Publish `slo.*` counters/gauges.
  void export_metrics(Registry& reg) const;

 private:
  void evaluate_window(sim::Time at);

  EventLog* log_;
  SloConfig cfg_;
  SloStats stats_;
  bool started_ = false;
  sim::Time window_end_ = 0;
  std::uint64_t win_requests_ = 0;
  std::uint64_t win_violations_ = 0;
};

/// Sim-time series scraper: a daemon samples registered callbacks every
/// `interval` into per-series ring buffers of `capacity` windows.  Daemon
/// wakeups never keep sim.run() alive and never shift foreground
/// timestamps, so a watched run finishes at the same simulated instant as
/// an unwatched one.
class Scraper {
 public:
  Scraper(sim::Simulation& sim, sim::Time interval,
          std::size_t capacity = 240);

  /// Register a series before start(); `sample` is called at every tick.
  void add_series(std::string name, std::function<double()> sample);
  /// Spawn the daemon loop.  Call once, before sim.run().
  void start();

  sim::Time interval() const { return interval_; }
  std::size_t samples() const { return count_; }
  /// Sample timestamps / values in chronological order (oldest surviving
  /// window first).
  std::vector<sim::Time> times() const;
  std::vector<double> values(std::size_t series) const;
  std::size_t num_series() const { return series_.size(); }
  const std::string& series_name(std::size_t i) const {
    return series_[i].name;
  }

  /// {"interval_ms":..., "samples":[...], "series":{"name":[...], ...}}
  std::string json() const;
  /// Compact fixed-width table with min/mean/max/last and a sparkline per
  /// series (the `raidxsim --watch` render).
  std::string render() const;

 private:
  struct Series {
    std::string name;
    std::function<double()> sample;
    std::vector<double> ring;
  };

  sim::Task<> loop();
  template <typename T>
  std::vector<T> unroll(const std::vector<T>& ring) const;

  sim::Simulation& sim_;
  sim::Time interval_;
  std::size_t capacity_;
  std::size_t count_ = 0;  // samples taken (ring holds min(count, capacity))
  std::size_t head_ = 0;   // next ring slot to overwrite
  std::vector<sim::Time> times_;
  std::vector<Series> series_;
  bool started_ = false;
};

}  // namespace raidx::obs
