// Shared helpers for the RAID-x test suite: small clusters, deterministic
// data patterns, and a driver that runs one task to completion.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "cdd/cdd.hpp"
#include "cluster/cluster.hpp"
#include "sim/event_queue.hpp"
#include "sim/task.hpp"

namespace raidx::test {

/// A small cluster geometry that keeps tests fast: tiny blocks, few blocks
/// per disk, but the full network/CPU/disk stack.
inline cluster::ClusterParams small_cluster(int nodes = 4,
                                            int disks_per_node = 1,
                                            std::uint64_t blocks_per_disk =
                                                600,
                                            std::uint32_t block_bytes = 512) {
  cluster::ClusterParams p = cluster::ClusterParams::trojans();
  p.geometry.nodes = nodes;
  p.geometry.disks_per_node = disks_per_node;
  p.geometry.blocks_per_disk = blocks_per_disk;
  p.geometry.block_bytes = block_bytes;
  return p;
}

/// Test rig bundling the simulation, cluster, and CDD fabric.
struct Rig {
  explicit Rig(cluster::ClusterParams params, cdd::CddParams cdd_params = {})
      : cluster(sim, params), fabric(cluster, cdd_params) {}

  sim::Simulation sim;
  cluster::Cluster cluster;
  cdd::CddFabric fabric;

  /// Spawn a task and drain the simulation (background work included).
  void run(sim::Task<> t) {
    sim.spawn(std::move(t));
    sim.run();
  }
};

/// Deterministic per-block data pattern so any misplaced block is caught.
inline std::vector<std::byte> pattern_block(std::uint64_t lba,
                                            std::uint32_t block_bytes,
                                            std::uint8_t salt = 0) {
  std::vector<std::byte> out(block_bytes);
  for (std::uint32_t i = 0; i < block_bytes; ++i) {
    out[i] = static_cast<std::byte>(
        static_cast<std::uint8_t>(lba * 131 + i * 7 + salt));
  }
  return out;
}

/// Pattern for a run of blocks starting at `lba`.
inline std::vector<std::byte> pattern_run(std::uint64_t lba,
                                          std::uint32_t nblocks,
                                          std::uint32_t block_bytes,
                                          std::uint8_t salt = 0) {
  std::vector<std::byte> out;
  out.reserve(static_cast<std::size_t>(nblocks) * block_bytes);
  for (std::uint32_t i = 0; i < nblocks; ++i) {
    auto blk = pattern_block(lba + i, block_bytes, salt);
    out.insert(out.end(), blk.begin(), blk.end());
  }
  return out;
}

}  // namespace raidx::test
