// Array controllers: execute logical I/O against a layout through the CDDs.
//
// The controller plays the role of the paper's client-side driver logic: it
// splits a logical request into per-disk operations, fans them out through
// the cooperative disk drivers (local fast path or remote RPC), enforces
// write consistency via lock groups, and implements each level's redundancy
// protocol -- RAID-5 read-modify-write, RAID-10 synchronous dual writes,
// RAID-x foreground data + background clustered image flushes.
//
// Client request streaming models the 1999 Linux client stack: a request
// stream is chopped into chunks with a bounded window of outstanding chunks
// (kernel readahead / request-queue depth), which is what keeps a single
// client well below the array's aggregate bandwidth, as the paper measures.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <vector>

#include "block/payload.hpp"
#include "cache/cache_fabric.hpp"
#include "cdd/cdd.hpp"
#include "obs/obs.hpp"
#include "raid/admission.hpp"
#include "raid/layout.hpp"
#include "raid/raid0.hpp"
#include "raid/raid1.hpp"
#include "raid/raid10.hpp"
#include "raid/raid5.hpp"
#include "raid/raidx.hpp"
#include "sim/join.hpp"
#include "sim/task.hpp"

namespace raidx::sim {
class TokenBucket;  // sim/token_bucket.hpp; only rebuild sweeps touch it
}

namespace raidx::raid {

struct EngineParams {
  /// Blocks per read chunk issued by a client stream.
  std::uint32_t read_chunk_blocks = 1;
  /// Outstanding read chunks per stream (readahead window).
  int read_window = 2;
  /// Outstanding write chunks per stream.
  int write_window = 2;
  /// Acquire lock-group write locks around writes (the consistency module).
  bool use_locks = true;
  /// RAID-5: fetch and check parity on reads (Table 1: "parity checks").
  /// Off by default (md-style reads); on as an ablation.
  bool verify_parity_on_read = false;
  /// RAID-5: assemble full-stripe writes to skip read-modify-write.  A
  /// 1999 driver with 16 x 32 KB = 512 KB stripes could not aggregate that
  /// much per request (128 KB request-merge ceiling), so the faithful
  /// default is per-block RMW; flip on as a modern-aggregation ablation.
  bool raid5_full_stripe_writes = false;
  /// RAID-x: flush mirror images in the background (OSM).  Off = ablation:
  /// images written synchronously in the foreground.
  bool background_mirrors = true;
  /// RAID-x: cluster a stripe's images into one long write.  Off =
  /// ablation: n-1 scattered single-block image writes (chained-
  /// declustering style placement cost).
  bool clustered_images = true;
  /// RAID-10: spread reads over primary and mirror copies.
  bool balance_mirror_reads = false;
  /// RAID-1/10/x hybrid (HDA-style) placement: primaries on the top half
  /// of the disk rows (SSD in a heterogeneous cluster), mirror images on
  /// the bottom half (HDD).  Requires an even disks_per_node.
  bool hybrid_mirrors = false;
  /// Client-side XOR cost for parity math (400 MHz-era ~10 ns/byte).
  double xor_ns_per_byte = 10.0;
};

// IoError / AdmissionError / AdmissionGate live in raid/admission.hpp.

/// Observer of committed client writes -- the WAN federation's
/// replication log hangs here.  Implementations are synchronous
/// bookkeeping only (no awaits, no simulation events), so a null
/// observer -- the default -- leaves the event sequence bit-identical.
class WriteObserver {
 public:
  virtual ~WriteObserver() = default;
  /// write() of [lba, lba+nblocks) by `client` just committed.
  virtual void on_client_write(int client, std::uint64_t lba,
                               std::uint32_t nblocks) = 0;
};

/// The block-level API workloads program against: a logical volume
/// addressed in blocks, usable from any client node.
class IoEngine {
 public:
  virtual ~IoEngine() = default;

  virtual std::string name() const = 0;
  virtual std::uint64_t logical_blocks() const = 0;
  virtual std::uint32_t block_bytes() const = 0;

  /// The simulation this engine's world lives in (for layers above that
  /// need timers/locks, e.g. the file system).
  virtual sim::Simulation& simulation() = 0;

  /// Read blocks [lba, lba+nblocks) into `out` (size nblocks*block_bytes),
  /// on behalf of node `client`.  `out` must outlive the task.  `ctx`
  /// links the request into an active trace; an empty context starts a
  /// new root span when tracing is on.
  virtual sim::Task<> read(int client, std::uint64_t lba,
                           std::uint32_t nblocks, std::span<std::byte> out,
                           obs::TraceContext ctx = {}) = 0;

  /// Write `data` (whole blocks) at `lba` on behalf of node `client`.
  /// The Payload overload is the real path: slicing it across disks and
  /// mirrors is O(1) and shares storage.  The span overload copies once
  /// into a Payload and forwards.
  virtual sim::Task<> write(int client, std::uint64_t lba,
                            block::Payload data,
                            obs::TraceContext ctx = {}) = 0;
  sim::Task<> write(int client, std::uint64_t lba,
                    std::span<const std::byte> data,
                    obs::TraceContext ctx = {}) {
    return write(client, lba, block::Payload::copy(data), ctx);
  }

  /// Attach a cooperative block-cache fabric in front of this engine.
  /// Engines without a cache path ignore the call; an attached fabric with
  /// capacity 0 is treated as absent, which keeps the event sequence
  /// bit-identical to a cacheless build.
  virtual void attach_cache(cache::CacheFabric*) {}
  virtual cache::CacheFabric* cache() { return nullptr; }

  /// Hint from the file-system layer: blocks [lo, hi) are metadata and
  /// should be evicted last.  No-op without an attached cache.
  virtual void set_cache_pinned_range(std::uint64_t /*lo*/,
                                      std::uint64_t /*hi*/) {}

  /// Write every dirty cached block back through the redundancy path
  /// (write-back caches; no-op otherwise).
  virtual sim::Task<> flush_cache() { co_return; }
};

/// Common machinery for the four layout-backed controllers.
class ArrayController : public IoEngine {
 public:
  ArrayController(cdd::CddFabric& fabric, EngineParams params);

  std::string name() const override { return layout().name(); }
  std::uint64_t logical_blocks() const override {
    return layout().logical_blocks();
  }
  std::uint32_t block_bytes() const override {
    return fabric_.cluster().geometry().block_bytes;
  }
  sim::Simulation& simulation() override { return fabric_.cluster().sim(); }

  sim::Task<> read(int client, std::uint64_t lba, std::uint32_t nblocks,
                   std::span<std::byte> out,
                   obs::TraceContext ctx = {}) override;
  sim::Task<> write(int client, std::uint64_t lba, block::Payload data,
                    obs::TraceContext ctx = {}) override;
  using IoEngine::write;

  virtual const Layout& layout() const = 0;

  cdd::CddFabric& fabric() { return fabric_; }
  const EngineParams& params() const { return params_; }

  void attach_cache(cache::CacheFabric* cache) override;
  cache::CacheFabric* cache() override { return cache_; }
  void set_cache_pinned_range(std::uint64_t lo, std::uint64_t hi) override;
  sim::Task<> flush_cache() override;

  /// Background (deferred) operations currently in flight -- nonzero only
  /// for RAID-x with background mirroring.
  int background_in_flight() const { return background_in_flight_; }

  /// Gate every logical read/write through an admission controller (null,
  /// the default, leaves the entry paths untouched and bit-identical).
  /// The gate is borrowed, not owned; internal traffic -- rebuild sweeps,
  /// cache write-back, scrub repair -- enters below this hook and is never
  /// gated.
  void set_admission(AdmissionGate* gate) { admission_ = gate; }
  AdmissionGate* admission() const { return admission_; }

  /// Notify `obs` after every successful top-level client write().
  /// Internal traffic -- rebuild sweeps, cache write-back, scrub repair,
  /// replication apply into mirror regions -- never fires it.  The
  /// observer is borrowed, not owned; null (the default) disables it.
  void set_write_observer(WriteObserver* obs) { write_observer_ = obs; }
  WriteObserver* write_observer() const { return write_observer_; }

  /// Restore a replaced disk's contents from redundancy.  Levels with a
  /// rebuild path (RAID-1/5/10/x) override; the base (RAID-0 has no
  /// redundancy) fails with IoError.  `max_offset` bounds the sweep in the
  /// level's own geometry units; the default covers the whole disk.
  virtual sim::Task<> rebuild_disk(int client, int disk_id,
                                   std::uint64_t max_offset = ~0ull);

  /// Repair one physically-addressed block whose stored bytes failed
  /// checksum verification: re-derive its correct contents from the
  /// layout's redundancy (mirror image, chained copy, parity XOR) and
  /// rewrite it, under the same lock groups a client write of the
  /// affected logical blocks would take -- so repair is byte-exact even
  /// against concurrent writers.  Returns true when repaired; false when
  /// the layout has no redundancy covering the block (the base
  /// implementation: RAID-0's explicit *unrecoverable loss* verdict) or
  /// when the redundant source is itself unavailable.
  virtual sim::Task<bool> repair_block(int client, int disk_id,
                                       std::uint64_t offset);

  /// Cap rebuild-sweep write bandwidth with a token bucket (tokens are
  /// bytes).  Null (the default) removes the cap and leaves the sweep's
  /// event sequence bit-identical to pre-throttle builds.  The bucket is
  /// borrowed, not owned; the caller keeps it alive across the sweep.
  void set_rebuild_throttle(sim::TokenBucket* bucket) {
    rebuild_throttle_ = bucket;
  }
  /// Bytes written by rebuild sweeps over this controller's lifetime.
  std::uint64_t rebuild_bytes_written() const { return rebuild_bytes_; }

  /// Place data (and redundancy) directly into the disks' byte stores with
  /// no simulated time -- test/benchmark setup, not an I/O path.
  virtual void preload(std::uint64_t lba, std::span<const std::byte> data);

 protected:
  /// One read chunk: contiguous logical blocks, bounded size.
  virtual sim::Task<> read_chunk(int client, std::uint64_t lba,
                                 std::uint32_t nblocks,
                                 std::span<std::byte> out,
                                 obs::TraceContext ctx = {});
  /// One write chunk: at most one stripe, stripe-aligned when full.
  /// `prio` is kForeground on the client write path and kBackground when
  /// the cache flusher drains dirty blocks behind foreground traffic.
  virtual sim::Task<> write_chunk(int client, std::uint64_t lba,
                                  block::Payload data,
                                  disk::IoPriority prio,
                                  obs::TraceContext ctx = {}) = 0;

  /// Node whose cache fronts requests from `client`.  Per-client caches by
  /// default; NFS overrides with the server node (server-side cache).
  virtual int cache_node(int client) const { return client; }

  /// read_chunk with the cache in front: serve hits from local or peer
  /// memory, read the missing runs through the layout's chunk path, then
  /// install them.
  sim::Task<> cached_read_chunk(int client, std::uint64_t lba,
                                std::uint32_t nblocks,
                                std::span<std::byte> out,
                                obs::TraceContext ctx = {});
  /// write_chunk with the cache in front: update/invalidate copies, then
  /// either write through or absorb (write-back).
  sim::Task<> cached_write_chunk(int client, std::uint64_t lba,
                                 block::Payload data,
                                 obs::TraceContext ctx = {});

  /// Flush one dirty block under its lock group; false if the disk write
  /// failed (the block stays dirty, the cache holds the only copy).
  sim::Task<bool> flush_block(int node, std::uint64_t lba);
  sim::Task<> flusher_loop(int node);
  void ensure_flusher(int node);

  /// Wrapper that tracks background_in_flight_ (RAID-x image flushes and
  /// cache write-back both run under it).
  sim::Task<> background(sim::Task<> op);

  /// Recover one block whose data disk failed; default throws IoError.
  virtual sim::Task<block::Payload> degraded_read_block(
      int client, std::uint64_t lba, obs::TraceContext ctx = {});

  /// Lock group covering a logical block.  Default: per-block groups (no
  /// false sharing between independent writers); RAID-5 overrides with
  /// per-stripe groups because concurrent read-modify-writes within one
  /// stripe would race on the parity block.
  virtual std::uint64_t lock_group_of(std::uint64_t lba) const {
    return lba;
  }

  /// Charge client CPU for XOR work over `bytes`.
  sim::Task<> xor_cpu(int client, std::uint64_t bytes);

  /// Account `bytes` of rebuild writes and, when a throttle is attached,
  /// wait for that many tokens.  Called by every sweep before each write.
  sim::Task<> rebuild_throttle_gate(std::uint64_t bytes);

  /// Read a contiguous physical extent, retrying per-block through
  /// degraded_read_block on disk failure.  Results land in `out` at the
  /// positions given by the extent's logical blocks relative to chunk_lba.
  sim::Task<> read_extent_into(int client, block::PhysExtent extent,
                               std::span<const std::uint64_t> lbas,
                               std::uint64_t chunk_lba,
                               std::span<std::byte> out,
                               obs::TraceContext ctx = {});

  sim::Simulation& sim() { return fabric_.cluster().sim(); }

  cdd::CddFabric& fabric_;
  EngineParams params_;
  AdmissionGate* admission_ = nullptr;
  WriteObserver* write_observer_ = nullptr;
  int background_in_flight_ = 0;
  sim::TokenBucket* rebuild_throttle_ = nullptr;
  std::uint64_t rebuild_bytes_ = 0;
  cache::CacheFabric* cache_ = nullptr;
  /// Per-node "a flusher task is running" flags (write-back draining).
  std::vector<char> flusher_active_;

  struct MappedExtent {
    block::PhysExtent extent;
    std::vector<std::uint64_t> lbas;  // logical block per extent position
  };
  std::vector<MappedExtent> mapped_extents(std::uint64_t lba,
                                           std::uint32_t nblocks) const;

 private:
  sim::Task<> windowed_op(sim::Task<> op, sim::Resource& window,
                          sim::Latch& done, std::exception_ptr& error,
                          obs::TraceContext ctx = {});
};

class Raid0Controller : public ArrayController {
 public:
  Raid0Controller(cdd::CddFabric& fabric, EngineParams params = {});
  const Layout& layout() const override { return layout_; }

 protected:
  sim::Task<> write_chunk(int client, std::uint64_t lba,
                          block::Payload data, disk::IoPriority prio,
                          obs::TraceContext ctx = {}) override;

 private:
  Raid0Layout layout_;
};

class Raid5Controller : public ArrayController {
 public:
  Raid5Controller(cdd::CddFabric& fabric, EngineParams params = {});
  const Layout& layout() const override { return layout_; }
  const Raid5Layout& raid5() const { return layout_; }

  /// Rebuild a replaced disk's contents from the surviving N-1 disks.
  /// `max_offset` bounds the sweep (physical stripes rebuilt); the default
  /// covers the whole disk.
  sim::Task<> rebuild_disk(int client, int disk_id,
                           std::uint64_t max_offset = ~0ull) override;

  /// Parity reconstruct: XOR of the stripe's surviving N-1 blocks.
  sim::Task<bool> repair_block(int client, int disk_id,
                               std::uint64_t offset) override;

  /// Direct placement must also keep parity consistent.
  void preload(std::uint64_t lba, std::span<const std::byte> data) override;

 protected:
  sim::Task<> read_chunk(int client, std::uint64_t lba, std::uint32_t nblocks,
                         std::span<std::byte> out,
                         obs::TraceContext ctx = {}) override;
  sim::Task<> write_chunk(int client, std::uint64_t lba,
                          block::Payload data, disk::IoPriority prio,
                          obs::TraceContext ctx = {}) override;
  sim::Task<block::Payload> degraded_read_block(
      int client, std::uint64_t lba, obs::TraceContext ctx = {}) override;
  std::uint64_t lock_group_of(std::uint64_t lba) const override {
    // Stripe-aligned groups: concurrent partial-stripe writers must never
    // race on the same parity block.
    return layout_.stripe_of(lba);
  }

 private:
  /// Full-stripe write: XOR parity client-side, one write per disk.
  sim::Task<> full_stripe_write(int client, std::uint64_t stripe,
                                const block::Payload& data,
                                disk::IoPriority prio,
                                obs::TraceContext ctx = {});
  /// Partial write inside one stripe: read-modify-write.
  sim::Task<> rmw_write(int client, std::uint64_t lba,
                        block::Payload data, disk::IoPriority prio,
                        obs::TraceContext ctx = {});

  Raid5Layout layout_;
};

class Raid10Controller : public ArrayController {
 public:
  Raid10Controller(cdd::CddFabric& fabric, EngineParams params = {});
  const Layout& layout() const override { return layout_; }

  /// Re-copy a replaced disk's primary and mirror zones from the chained
  /// neighbors.  `max_offset` bounds the data-zone rows swept.
  sim::Task<> rebuild_disk(int client, int disk_id,
                           std::uint64_t max_offset = ~0ull) override;

  /// Re-fetch from the chained copy (primary zone from the next node's
  /// mirror, mirror zone from the previous node's primary).
  sim::Task<bool> repair_block(int client, int disk_id,
                               std::uint64_t offset) override;

 protected:
  /// With balance_mirror_reads, alternate extents between the primary and
  /// the chained backup copy -- Hsiao & DeWitt's load-balancing read path.
  sim::Task<> read_chunk(int client, std::uint64_t lba, std::uint32_t nblocks,
                         std::span<std::byte> out,
                         obs::TraceContext ctx = {}) override;
  sim::Task<> write_chunk(int client, std::uint64_t lba,
                          block::Payload data, disk::IoPriority prio,
                          obs::TraceContext ctx = {}) override;
  sim::Task<block::Payload> degraded_read_block(
      int client, std::uint64_t lba, obs::TraceContext ctx = {}) override;

 private:
  /// Balanced read of one extent: possibly redirected to the mirror copy,
  /// falling back to the other copy per block on failure.
  sim::Task<> balanced_read_extent(int client, block::PhysExtent primary,
                                   bool use_mirror,
                                   std::span<const std::uint64_t> lbas,
                                   std::uint64_t chunk_lba,
                                   std::span<std::byte> out,
                                   obs::TraceContext ctx = {});

  Raid10Layout layout_;
};

/// Mirrored pairs (the conclusion's "we will also consider RAID-1").
/// Writes hit both copies synchronously at the same offset; reads can
/// balance over the pair.
class Raid1Controller : public ArrayController {
 public:
  Raid1Controller(cdd::CddFabric& fabric, EngineParams params = {});
  const Layout& layout() const override { return layout_; }

  /// Re-copy a replaced disk from its pair partner.
  sim::Task<> rebuild_disk(int client, int disk_id,
                           std::uint64_t max_offset = ~0ull) override;

  /// Re-fetch the block from the pair partner.
  sim::Task<bool> repair_block(int client, int disk_id,
                               std::uint64_t offset) override;

 protected:
  sim::Task<> read_chunk(int client, std::uint64_t lba, std::uint32_t nblocks,
                         std::span<std::byte> out,
                         obs::TraceContext ctx = {}) override;
  sim::Task<> write_chunk(int client, std::uint64_t lba,
                          block::Payload data, disk::IoPriority prio,
                          obs::TraceContext ctx = {}) override;
  sim::Task<block::Payload> degraded_read_block(
      int client, std::uint64_t lba, obs::TraceContext ctx = {}) override;

 private:
  Raid1Layout layout_;
};

class RaidxController : public ArrayController {
 public:
  RaidxController(cdd::CddFabric& fabric, EngineParams params = {});
  const Layout& layout() const override { return layout_; }
  const RaidxLayout& raidx() const { return layout_; }

  /// Restore a replaced disk: data blocks from their images, image zones
  /// from the surviving data blocks.  `max_offset` bounds the data-zone
  /// rows (q) swept.
  sim::Task<> rebuild_disk(int client, int disk_id,
                           std::uint64_t max_offset = ~0ull) override;

  /// Data-zone blocks re-fetch from their mirror image (preferring a
  /// still-in-flight deferred image); image-zone slots regenerate from
  /// the data block they mirror.
  sim::Task<bool> repair_block(int client, int disk_id,
                               std::uint64_t offset) override;

 protected:
  /// With balance_mirror_reads, single-block reads alternate between the
  /// data block and its image -- the "I/O load balancing" the paper's
  /// next-phase file system targets.  Multi-block chunks always read the
  /// data stripe: a stripe's images are clustered on ONE disk, so routing
  /// a whole stripe at them would serialize what striping parallelizes.
  sim::Task<> read_chunk(int client, std::uint64_t lba, std::uint32_t nblocks,
                         std::span<std::byte> out,
                         obs::TraceContext ctx = {}) override;
  sim::Task<> write_chunk(int client, std::uint64_t lba,
                          block::Payload data, disk::IoPriority prio,
                          obs::TraceContext ctx = {}) override;
  sim::Task<block::Payload> degraded_read_block(
      int client, std::uint64_t lba, obs::TraceContext ctx = {}) override;

 private:
  /// Flush a full stripe's images: one clustered run + one neighbor block.
  sim::Task<> flush_stripe_images(int client, std::uint64_t stripe,
                                  block::Payload stripe_data,
                                  obs::TraceContext ctx = {});
  /// Flush a single block's image.
  sim::Task<> flush_block_image(int client, std::uint64_t lba,
                                block::Payload data,
                                obs::TraceContext ctx = {});

  /// The image bytes of `lba` still in flight to the image disk, or null.
  ///
  /// Deferred image flushes (the OSM trick) run at background priority
  /// AFTER the client's write has returned and released its locks, so the
  /// on-disk image trails the data copy by up to one write.  Healthy reads
  /// never notice -- they read data copies -- but the failure paths
  /// (degraded reads, the rebuild sweep's data-zone restore) read images
  /// and MUST prefer this buffer, or a client that just wrote a block can
  /// read its previous contents back through the degraded path.  Healthy
  /// paths deliberately do not consult it: serving a disk read from memory
  /// would shift fault-free timings (and the committed baselines).
  const block::Payload* pending_image(std::uint64_t lba) const {
    const auto it = pending_images_.find(lba);
    return it == pending_images_.end() ? nullptr : &it->second.data;
  }

  struct PendingImage {
    std::uint64_t seq;  // newest write wins; stale flushes don't erase
    block::Payload data;
  };
  std::unordered_map<std::uint64_t, PendingImage> pending_images_;
  std::uint64_t pending_image_seq_ = 0;

  RaidxLayout layout_;
};

}  // namespace raidx::raid
