// File-system tests over the RAID-x engine: namespace operations, data
// round trips, partial-block I/O, concurrency, and traffic accounting.
#include <gtest/gtest.h>

#include "fs/filesystem.hpp"
#include "raid/controller.hpp"
#include "test_util.hpp"

namespace raidx::fs {
namespace {

using test::Rig;

struct FsRig {
  FsRig()
      : rig(test::small_cluster(4, 1, /*blocks_per_disk=*/2000)),
        eng(rig.fabric),
        fsys(eng, FileSystem::Params{/*max_inodes=*/256,
                                     /*dirent_bytes=*/64}) {
    rig.run(fsys.format(0));
  }
  Rig rig;
  raid::RaidxController eng;
  FileSystem fsys;
};

TEST(SplitPath, ParsesComponents) {
  EXPECT_EQ(split_path("/"), (std::vector<std::string>{}));
  EXPECT_EQ(split_path("/a"), (std::vector<std::string>{"a"}));
  EXPECT_EQ(split_path("/a/b/c"), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(split_path("/a//b/"), (std::vector<std::string>{"a", "b"}));
  EXPECT_THROW(split_path(""), FsError);
  EXPECT_THROW(split_path("relative/path"), FsError);
}

TEST(FileSystem, CreateLookupStat) {
  FsRig f;
  Ino ino = kInvalidIno;
  auto scenario = [](FileSystem& fs, Ino* out) -> sim::Task<> {
    *out = co_await fs.create(0, "/hello");
    const Ino found = co_await fs.lookup(1, "/hello");
    EXPECT_EQ(found, *out);
  };
  f.rig.run(scenario(f.fsys, &ino));
  ASSERT_NE(ino, kInvalidIno);
  const FileInfo info = f.fsys.stat(ino);
  EXPECT_EQ(info.type, FileType::kFile);
  EXPECT_EQ(info.size, 0u);
}

TEST(FileSystem, NestedDirectories) {
  FsRig f;
  auto scenario = [](FileSystem& fs) -> sim::Task<> {
    co_await fs.mkdir(0, "/a");
    co_await fs.mkdir(0, "/a/b");
    co_await fs.mkdir(1, "/a/b/c");
    co_await fs.create(2, "/a/b/c/file");
    const Ino ino = co_await fs.lookup(3, "/a/b/c/file");
    EXPECT_NE(ino, kInvalidIno);
  };
  f.rig.run(scenario(f.fsys));
}

TEST(FileSystem, MissingPathThrows) {
  FsRig f;
  auto scenario = [](FileSystem& fs, bool* threw) -> sim::Task<> {
    try {
      co_await fs.lookup(0, "/does/not/exist");
    } catch (const FsError&) {
      *threw = true;
    }
  };
  bool threw = false;
  f.rig.run(scenario(f.fsys, &threw));
  EXPECT_TRUE(threw);
}

TEST(FileSystem, DuplicateCreateThrows) {
  FsRig f;
  auto scenario = [](FileSystem& fs, bool* threw) -> sim::Task<> {
    co_await fs.create(0, "/x");
    try {
      co_await fs.create(1, "/x");
    } catch (const FsError&) {
      *threw = true;
    }
  };
  bool threw = false;
  f.rig.run(scenario(f.fsys, &threw));
  EXPECT_TRUE(threw);
}

TEST(FileSystem, WriteReadRoundTrip) {
  FsRig f;
  const std::vector<std::byte> data = test::pattern_run(0, 3, 512, 42);
  std::vector<std::byte> got(data.size());
  auto scenario = [](FileSystem& fs, std::span<const std::byte> in,
                     std::span<std::byte> out) -> sim::Task<> {
    const Ino ino = co_await fs.create(0, "/data");
    const std::uint64_t w = co_await fs.write_at(0, ino, 0, in);
    EXPECT_EQ(w, in.size());
    const std::uint64_t r = co_await fs.read_at(1, ino, 0, out);
    EXPECT_EQ(r, out.size());
  };
  f.rig.run(scenario(f.fsys, data, got));
  EXPECT_EQ(got, data);
}

TEST(FileSystem, UnalignedOffsetsMergeCorrectly) {
  FsRig f;
  auto scenario = [](FileSystem& fs) -> sim::Task<> {
    const Ino ino = co_await fs.create(0, "/u");
    // Write "AAAA..." then punch "BB" into the middle of a block.
    std::vector<std::byte> a(1200, std::byte{'A'});
    co_await fs.write_at(0, ino, 0, a);
    std::vector<std::byte> b(100, std::byte{'B'});
    co_await fs.write_at(0, ino, 300, b);
    std::vector<std::byte> out(1200);
    const std::uint64_t r = co_await fs.read_at(0, ino, 0, out);
    EXPECT_EQ(r, 1200u);
    for (std::size_t i = 0; i < 1200; ++i) {
      const auto expect =
          (i >= 300 && i < 400) ? std::byte{'B'} : std::byte{'A'};
      EXPECT_EQ(out[i], expect) << "offset " << i;
    }
  };
  f.rig.run(scenario(f.fsys));
}

TEST(FileSystem, ReadPastEofClamps) {
  FsRig f;
  auto scenario = [](FileSystem& fs) -> sim::Task<> {
    const Ino ino = co_await fs.create(0, "/short");
    std::vector<std::byte> data(100, std::byte{7});
    co_await fs.write_at(0, ino, 0, data);
    std::vector<std::byte> out(500);
    EXPECT_EQ(co_await fs.read_at(0, ino, 0, out), 100u);
    EXPECT_EQ(co_await fs.read_at(0, ino, 100, out), 0u);
    EXPECT_EQ(co_await fs.read_at(0, ino, 60, out), 40u);
  };
  f.rig.run(scenario(f.fsys));
}

TEST(FileSystem, SparseGrowthViaOffsetWrite) {
  FsRig f;
  auto scenario = [](FileSystem& fs) -> sim::Task<> {
    const Ino ino = co_await fs.create(0, "/sparse");
    std::vector<std::byte> tail(64, std::byte{9});
    co_await fs.write_at(0, ino, 2000, tail);
    EXPECT_EQ(fs.stat(ino).size, 2064u);
    std::vector<std::byte> head(16);
    EXPECT_EQ(co_await fs.read_at(0, ino, 0, head), 16u);
    for (std::byte b : head) EXPECT_EQ(b, std::byte{0});
  };
  f.rig.run(scenario(f.fsys));
}

TEST(FileSystem, ReaddirListsEntries) {
  FsRig f;
  std::vector<DirEntry> listing;
  auto scenario = [](FileSystem& fs,
                     std::vector<DirEntry>* out) -> sim::Task<> {
    co_await fs.mkdir(0, "/d");
    co_await fs.create(0, "/d/one");
    co_await fs.create(0, "/d/two");
    co_await fs.mkdir(0, "/d/sub");
    const Ino dir = co_await fs.lookup(0, "/d");
    *out = co_await fs.readdir(0, dir);
  };
  f.rig.run(scenario(f.fsys, &listing));
  ASSERT_EQ(listing.size(), 3u);
  EXPECT_EQ(listing[0].name, "one");
  EXPECT_EQ(listing[1].name, "two");
  EXPECT_EQ(listing[2].name, "sub");
  EXPECT_EQ(listing[2].type, FileType::kDirectory);
}

TEST(FileSystem, UnlinkRemovesAndFreesBlocks) {
  FsRig f;
  auto scenario = [](FileSystem& fs) -> sim::Task<> {
    const Ino ino = co_await fs.create(0, "/victim");
    std::vector<std::byte> data(5 * 512, std::byte{1});
    co_await fs.write_at(0, ino, 0, data);
    const std::uint64_t used = fs.blocks_in_use();
    co_await fs.unlink(0, "/victim");
    EXPECT_LT(fs.blocks_in_use(), used);
    bool threw = false;
    try {
      co_await fs.lookup(0, "/victim");
    } catch (const FsError&) {
      threw = true;
    }
    EXPECT_TRUE(threw);
  };
  f.rig.run(scenario(f.fsys));
}

TEST(FileSystem, UnlinkNonEmptyDirectoryThrows) {
  FsRig f;
  auto scenario = [](FileSystem& fs, bool* threw) -> sim::Task<> {
    co_await fs.mkdir(0, "/full");
    co_await fs.create(0, "/full/x");
    try {
      co_await fs.unlink(0, "/full");
    } catch (const FsError&) {
      *threw = true;
    }
  };
  bool threw = false;
  f.rig.run(scenario(f.fsys, &threw));
  EXPECT_TRUE(threw);
}

TEST(FileSystem, ConcurrentClientsBuildDisjointTrees) {
  FsRig f;
  auto worker = [](FileSystem& fs, int c) -> sim::Task<> {
    const std::string root = "/w" + std::to_string(c);
    co_await fs.mkdir(c, root);
    for (int i = 0; i < 5; ++i) {
      const std::string path = root + "/f" + std::to_string(i);
      const Ino ino = co_await fs.create(c, path);
      std::vector<std::byte> data(
          300, std::byte{static_cast<unsigned char>(c * 16 + i)});
      co_await fs.write_at(c, ino, 0, data);
    }
  };
  for (int c = 0; c < 4; ++c) f.rig.sim.spawn(worker(f.fsys, c));
  f.rig.sim.run();
  // Verify every file's contents.
  auto verify = [](FileSystem& fs, int c) -> sim::Task<> {
    for (int i = 0; i < 5; ++i) {
      const std::string path =
          "/w" + std::to_string(c) + "/f" + std::to_string(i);
      const Ino ino = co_await fs.lookup(0, path);
      std::vector<std::byte> out(300);
      EXPECT_EQ(co_await fs.read_at(0, ino, 0, out), 300u);
      for (std::byte b : out) {
        EXPECT_EQ(b, std::byte{static_cast<unsigned char>(c * 16 + i)});
      }
    }
  };
  for (int c = 0; c < 4; ++c) f.rig.run(verify(f.fsys, c));
}

TEST(FileSystem, ConcurrentCreatesInOneDirectoryAllLand) {
  FsRig f;
  auto creator = [](FileSystem& fs, int c) -> sim::Task<> {
    const std::string path = "/shared_f" + std::to_string(c);
    co_await fs.create(c, path);
  };
  for (int c = 0; c < 4; ++c) f.rig.sim.spawn(creator(f.fsys, c));
  f.rig.sim.run();
  std::vector<DirEntry> listing;
  auto list = [](FileSystem& fs, std::vector<DirEntry>* out) -> sim::Task<> {
    *out = co_await fs.readdir(0, kRootIno);
  };
  f.rig.run(list(f.fsys, &listing));
  EXPECT_EQ(listing.size(), 4u);
}

TEST(FileSystem, OperationsGenerateEngineTraffic) {
  FsRig f;
  std::uint64_t disk_writes_before = 0;
  for (int d = 0; d < 4; ++d) {
    disk_writes_before += f.rig.cluster.disk(d).writes();
  }
  auto scenario = [](FileSystem& fs) -> sim::Task<> {
    const Ino ino = co_await fs.create(0, "/traffic");
    std::vector<std::byte> data(2048, std::byte{3});
    co_await fs.write_at(0, ino, 0, data);
  };
  f.rig.run(scenario(f.fsys));
  std::uint64_t disk_writes_after = 0;
  for (int d = 0; d < 4; ++d) {
    disk_writes_after += f.rig.cluster.disk(d).writes();
  }
  // create (inode + dir + parent inode) and 4 data blocks + inode update,
  // plus mirror images: well above the data-block count alone.
  EXPECT_GT(disk_writes_after - disk_writes_before, 8u);
}

TEST(FileSystem, TooSmallVolumeIsRejected) {
  Rig rig(test::small_cluster(4, 1, /*blocks_per_disk=*/40));
  raid::RaidxController eng(rig.fabric);
  EXPECT_THROW(FileSystem fsys(eng), FsError);
}

TEST(FileSystem, WorksOverEveryEngine) {
  for (int which = 0; which < 3; ++which) {
    Rig rig(test::small_cluster(4, 1, /*blocks_per_disk=*/2000));
    std::unique_ptr<raid::ArrayController> eng;
    if (which == 0) {
      eng = std::make_unique<raid::Raid5Controller>(rig.fabric);
    } else if (which == 1) {
      eng = std::make_unique<raid::Raid10Controller>(rig.fabric);
    } else {
      eng = std::make_unique<raid::Raid0Controller>(rig.fabric);
    }
    FileSystem fsys(*eng, FileSystem::Params{/*max_inodes=*/256,
                                             /*dirent_bytes=*/64});
    rig.run(fsys.format(0));
    auto scenario = [](FileSystem& fs) -> sim::Task<> {
      const Ino ino = co_await fs.create(0, "/f");
      std::vector<std::byte> data(700, std::byte{0x33});
      co_await fs.write_at(1, ino, 0, data);
      std::vector<std::byte> out(700);
      EXPECT_EQ(co_await fs.read_at(2, ino, 0, out), 700u);
      for (std::byte b : out) EXPECT_EQ(b, std::byte{0x33});
    };
    rig.run(scenario(fsys));
  }
}

}  // namespace
}  // namespace raidx::fs
