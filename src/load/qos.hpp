// Multi-tenant QoS: per-tenant token-bucket admission control.
//
// A QosGate implements raid::AdmissionGate over a set of tenants, each
// with its own byte-rate token bucket and one of three policies for
// requests that arrive with the bucket empty:
//
//  * kReject -- fail the request immediately (the client sees an error and
//    may retry; counted `rejected`).
//  * kShed   -- drop it at the door (counted `shed`; the open-loop tier's
//    default, because overload shedding is what keeps a misbehaving
//    tenant's backlog out of the shared disk queues).
//  * kQueue  -- hold the request in a per-tenant FIFO until its tokens
//    have accrued; requests beyond `max_queue` waiters are shed so a
//    sustained overload cannot grow an unbounded queue.
//
// Tenancy is resolved from the client node: bind_client() records which
// tenant a node's traffic belongs to, and unbound clients pass untouched
// (so control traffic, rebuild sweeps, and non-load workloads never hit a
// bucket).  Buckets refill lazily from elapsed simulated time -- an idle
// gate costs the event queue nothing and runs stay bit-identical.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "raid/admission.hpp"
#include "sim/event_queue.hpp"
#include "sim/resource.hpp"
#include "sim/task.hpp"
#include "sim/time.hpp"

namespace raidx::obs {
class Registry;
}

namespace raidx::load {

enum class AdmitPolicy { kReject, kQueue, kShed };

const char* admit_policy_name(AdmitPolicy p);

struct TenantQos {
  /// Sustained admission rate in MB/s (1 MB = 1e6 bytes, matching how the
  /// simulator quotes bandwidth everywhere).  0 = unlimited: every request
  /// admitted instantly.
  double rate_mbs = 0.0;
  /// Burst allowance in MB an idle tenant can save up.
  double burst_mb = 1.0;
  AdmitPolicy policy = AdmitPolicy::kShed;
  /// kQueue: waiters beyond this are shed instead of queued.
  std::size_t max_queue = 4096;
};

struct TenantQosStats {
  std::uint64_t admitted = 0;
  std::uint64_t admitted_bytes = 0;
  std::uint64_t rejected = 0;
  std::uint64_t shed = 0;
  /// Requests that had to wait in the FIFO before admission (kQueue).
  std::uint64_t queued = 0;
  sim::Time queue_wait_ns = 0;
  std::size_t peak_queue = 0;
};

class QosGate : public raid::AdmissionGate {
 public:
  QosGate(sim::Simulation& sim, std::vector<TenantQos> tenants);

  /// Traffic from `client` belongs to `tenant` (index into the ctor
  /// vector).  Unbound clients are unmanaged: always admitted, uncounted.
  void bind_client(int client, int tenant);
  int tenant_of(int client) const;

  sim::Task<> admit(int client, bool is_write, std::uint64_t bytes,
                    obs::TraceContext ctx = {}) override;

  int num_tenants() const { return static_cast<int>(tenants_.size()); }
  const TenantQos& config(int tenant) const {
    return tenants_[static_cast<std::size_t>(tenant)].cfg;
  }
  const TenantQosStats& stats(int tenant) const {
    return tenants_[static_cast<std::size_t>(tenant)].stats;
  }

  /// Publish per-tenant counters as `qos.tenant.<idx>.*`.
  void export_metrics(obs::Registry& reg) const;

 private:
  struct Tenant {
    TenantQos cfg;
    double tokens = 0.0;      // bytes
    sim::Time last = 0;       // last refill instant
    std::size_t waiting = 0;  // kQueue: waiters incl. the gate holder
    std::unique_ptr<sim::Resource> fifo;  // capacity-1 FIFO turn-taker
    TenantQosStats stats;
  };

  void refill(Tenant& t);
  sim::Task<> admit_queued(Tenant& t, int tenant, std::uint64_t bytes);

  sim::Simulation& sim_;
  std::vector<Tenant> tenants_;
  std::vector<int> client_tenant_;  // -1 = unmanaged
};

}  // namespace raidx::load
