// Failure and recovery walkthrough on RAID-x.
//
// The scenario the paper's reliability story covers:
//   1. an application writes data across the array;
//   2. a disk dies -- reads continue from the orthogonal mirror images
//      (degraded mode), at a measurable latency cost;
//   3. the disk is replaced and the rebuild engine restores both its data
//      blocks and its image zones from the survivors, in the background;
//   4. service returns to normal, contents intact.
#include <cstdio>

#include "cluster/cluster.hpp"
#include "raid/controller.hpp"
#include "sim/event_queue.hpp"

using namespace raidx;

namespace {

constexpr std::uint32_t kBlocks = 64;

std::vector<std::byte> make_payload(std::uint32_t bs) {
  std::vector<std::byte> payload(kBlocks * bs);
  for (std::size_t i = 0; i < payload.size(); ++i) {
    payload[i] = static_cast<std::byte>(i * 131 + 7);
  }
  return payload;
}

sim::Task<sim::Time> timed_read(raid::RaidxController& array,
                                std::vector<std::byte>& out) {
  auto& sim = array.simulation();
  const sim::Time t0 = sim.now();
  co_await array.read(0, 0, kBlocks, out);
  co_return sim.now() - t0;
}

sim::Task<> scenario(raid::RaidxController& array,
                     cluster::Cluster& cluster) {
  auto& sim = array.simulation();
  const auto payload = make_payload(array.block_bytes());

  std::printf("[%7.3f s] writing %zu KB across the array...\n",
              sim::to_seconds(sim.now()), payload.size() / 1024);
  co_await array.write(0, 0, payload);

  std::vector<std::byte> buf(payload.size());
  sim::Time healthy = co_await timed_read(array, buf);
  std::printf("[%7.3f s] healthy read: %.2f ms  (%s)\n",
              sim::to_seconds(sim.now()), sim::to_milliseconds(healthy),
              buf == payload ? "contents ok" : "MISMATCH");

  const int victim = 2;
  cluster.disk(victim).fail();
  std::printf("[%7.3f s] *** disk %d failed ***\n",
              sim::to_seconds(sim.now()), victim);

  sim::Time degraded = co_await timed_read(array, buf);
  std::printf("[%7.3f s] degraded read: %.2f ms  (%.1fx healthy, served "
              "from mirror images; %s)\n",
              sim::to_seconds(sim.now()), sim::to_milliseconds(degraded),
              static_cast<double>(degraded) / static_cast<double>(healthy),
              buf == payload ? "contents ok" : "MISMATCH");

  cluster.disk(victim).replace();
  std::printf("[%7.3f s] replacement disk installed; rebuilding...\n",
              sim::to_seconds(sim.now()));
  const sim::Time rb0 = sim.now();
  // Rebuild the region the data occupies (a full-disk sweep works the same
  // way, block row by block row).
  co_await array.rebuild_disk(/*client=*/victim, victim,
                              /*max_offset=*/64);
  std::printf("[%7.3f s] rebuild finished in %.2f ms\n",
              sim::to_seconds(sim.now()),
              sim::to_milliseconds(sim.now() - rb0));

  sim::Time restored = co_await timed_read(array, buf);
  std::printf("[%7.3f s] post-rebuild read: %.2f ms  (%s)\n",
              sim::to_seconds(sim.now()), sim::to_milliseconds(restored),
              buf == payload ? "contents ok" : "MISMATCH");

  // Prove the rebuilt disk's *image zones* are also correct: fail a
  // neighbor and read through the rebuilt disk's mirrors.
  const int second = 0;
  cluster.disk(second).fail();
  std::printf("[%7.3f s] *** disk %d failed (after rebuild) ***\n",
              sim::to_seconds(sim.now()), second);
  sim::Time via_rebuilt = co_await timed_read(array, buf);
  std::printf("[%7.3f s] read via rebuilt images: %.2f ms  (%s)\n",
              sim::to_seconds(sim.now()),
              sim::to_milliseconds(via_rebuilt),
              buf == payload ? "contents ok" : "MISMATCH");
}

}  // namespace

int main() {
  std::printf("RAID-x failure & recovery walkthrough (4-node array)\n\n");
  sim::Simulation sim;
  // A small array keeps the rebuild sweep readable.
  auto params = cluster::ClusterParams::trojans();
  params.geometry.nodes = 4;
  params.geometry.blocks_per_disk = 4096;
  cluster::Cluster cluster(sim, params);
  cdd::CddFabric fabric(cluster);
  raid::RaidxController array(fabric);

  sim.spawn(scenario(array, cluster));
  sim.run();
  return 0;
}
