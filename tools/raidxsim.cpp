// raidxsim -- command-line experiment runner for the RAID-x simulator.
//
// Lets a user sweep any point of the design space without writing code:
//
//   raidxsim --arch raidx --nodes 16 --disks 1 --clients 8 \
//            --op read --bytes 64M --ops 1
//   raidxsim --arch raid5 --clients 16 --op write --bytes 32K --ops 40 \
//            --scattered --fail 3
//   raidxsim --arch nfs --clients 12 --op read --bytes 8M --verbose
//
// Prints aggregate and sustained bandwidth, per-op latency percentiles,
// and per-resource utilization.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include <fstream>

#include "cache/cache_fabric.hpp"
#include "cluster/cluster.hpp"
#include "nfs/nfs.hpp"
#include "obs/collect.hpp"
#include "obs/obs.hpp"
#include "sim/stats.hpp"
#include "workload/engines.hpp"
#include "workload/parallel_io.hpp"
#include "workload/trace.hpp"

using namespace raidx;

namespace {

[[noreturn]] void usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [options]\n"
      "  --arch raid0|raid5|raid10|raidx|nfs   architecture (default raidx)\n"
      "  --nodes N          cluster nodes (default 16)\n"
      "  --disks K          disks per node (default 1)\n"
      "  --clients C        parallel clients (default 8)\n"
      "  --op read|write    operation (default read)\n"
      "  --bytes SZ         bytes per op, accepts K/M suffix (default 64M)\n"
      "  --ops N            ops per client (default 1)\n"
      "  --scattered        scatter ops over the client region\n"
      "  --block SZ         stripe unit (default 32K)\n"
      "  --fail D           fail disk D before the run (repeatable)\n"
      "  --no-bg-mirrors    RAID-x: synchronous image writes\n"
      "  --no-locks         disable lock-group traffic\n"
      "  --window W         outstanding chunks per stream (default 2)\n"
      "  --cache-mb MB      per-node block cache capacity (default 0 = "
      "off)\n"
      "  --cache-policy P   none|wt|wb: write-through or write-back "
      "(default wt)\n"
      "  --cache-evict E    lru|2q eviction (default lru)\n"
      "  --coop-cache       serve misses from peer memory (cooperative)\n"
      "  --warm N           unmeasured warm passes before the measured run\n"
      "  --seed S           workload seed (default 42)\n"
      "  --replay FILE      replay a block trace instead of the synthetic "
      "workload\n"
      "  --dump-trace FILE  write a generated trace (clients/ops/seed "
      "apply) and exit\n"
      "  --trace FILE       write a Chrome trace-event JSON of the run "
      "(view in about:tracing / Perfetto)\n"
      "  --metrics FILE     write the metrics-registry snapshot as JSON\n"
      "  --verbose          per-client and per-resource detail\n"
      "Flags also accept --flag=value form.\n",
      argv0);
  std::exit(2);
}

std::uint64_t parse_size(const std::string& s) {
  char* end = nullptr;
  const double v = std::strtod(s.c_str(), &end);
  std::uint64_t mult = 1;
  if (end && *end) {
    switch (*end) {
      case 'k': case 'K': mult = 1024; break;
      case 'm': case 'M': mult = 1024 * 1024; break;
      case 'g': case 'G': mult = 1024ull * 1024 * 1024; break;
      default:
        std::fprintf(stderr, "bad size suffix: %s\n", s.c_str());
        std::exit(2);
    }
  }
  return static_cast<std::uint64_t>(v * static_cast<double>(mult));
}

workload::Arch parse_arch(const std::string& s) {
  if (s == "raid0") return workload::Arch::kRaid0;
  if (s == "raid5") return workload::Arch::kRaid5;
  if (s == "raid10") return workload::Arch::kRaid10;
  if (s == "raidx") return workload::Arch::kRaidX;
  if (s == "nfs") return workload::Arch::kNfs;
  std::fprintf(stderr, "unknown arch: %s\n", s.c_str());
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  workload::Arch arch = workload::Arch::kRaidX;
  int nodes = 16, disks = 1, clients = 8, ops = 1, window = 2;
  std::uint64_t bytes = 64ull << 20;
  std::uint32_t block = 32'768;
  bool is_write = false, scattered = false, verbose = false;
  bool bg_mirrors = true, locks = true;
  std::uint64_t seed = 42;
  std::vector<int> fails;
  std::string replay_file, dump_trace_file, trace_out, metrics_out;
  double cache_mb = 0.0;
  std::string cache_policy = "wt";
  std::string cache_evict = "lru";
  bool coop_cache = false;
  int warm = 0;

  for (int i = 1; i < argc; ++i) {
    std::string a = argv[i];
    // Accept --flag=value as well as --flag value.
    std::string inline_value;
    bool has_inline = false;
    if (a.rfind("--", 0) == 0) {
      const std::size_t eq = a.find('=');
      if (eq != std::string::npos) {
        inline_value = a.substr(eq + 1);
        a = a.substr(0, eq);
        has_inline = true;
      }
    }
    bool consumed_value = false;
    auto next = [&]() -> std::string {
      consumed_value = true;
      if (has_inline) return inline_value;
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s: missing value for %s\n", argv[0],
                     a.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (a == "--arch") arch = parse_arch(next());
    else if (a == "--nodes") nodes = std::atoi(next().c_str());
    else if (a == "--disks") disks = std::atoi(next().c_str());
    else if (a == "--clients") clients = std::atoi(next().c_str());
    else if (a == "--op") is_write = (next() == "write");
    else if (a == "--bytes") bytes = parse_size(next());
    else if (a == "--ops") ops = std::atoi(next().c_str());
    else if (a == "--scattered") scattered = true;
    else if (a == "--block") block = static_cast<std::uint32_t>(parse_size(next()));
    else if (a == "--fail") fails.push_back(std::atoi(next().c_str()));
    else if (a == "--no-bg-mirrors") bg_mirrors = false;
    else if (a == "--no-locks") locks = false;
    else if (a == "--window") window = std::atoi(next().c_str());
    else if (a == "--cache-mb") {
      cache_mb = std::atof(next().c_str());
      if (cache_mb < 0.0) {
        std::fprintf(stderr, "--cache-mb must be >= 0\n");
        return 2;
      }
    }
    else if (a == "--cache-policy") cache_policy = next();
    else if (a == "--cache-evict") cache_evict = next();
    else if (a == "--coop-cache") coop_cache = true;
    else if (a == "--warm") warm = std::atoi(next().c_str());
    else if (a == "--seed") seed = static_cast<std::uint64_t>(std::atoll(next().c_str()));
    else if (a == "--replay") replay_file = next();
    else if (a == "--dump-trace") dump_trace_file = next();
    else if (a == "--trace") trace_out = next();
    else if (a == "--metrics") metrics_out = next();
    else if (a == "--verbose") verbose = true;
    else {
      std::fprintf(stderr, "%s: unknown option %s\n\n", argv[0], a.c_str());
      usage(argv[0]);
    }
    if (has_inline && !consumed_value) {
      std::fprintf(stderr, "%s: %s takes no value\n", argv[0], a.c_str());
      return 2;
    }
  }
  if (nodes < 2 || disks < 1 || clients < 1 || ops < 1) usage(argv[0]);

  // Reject flag combinations that would silently do nothing (or fail only
  // after a long simulation).
  const bool cache_on = cache_mb > 0.0 && cache_policy != "none";
  if (warm < 0) {
    std::fprintf(stderr, "%s: --warm must be >= 0\n", argv[0]);
    return 2;
  }
  if (warm > 0 && !cache_on) {
    std::fprintf(stderr,
                 "%s: --warm only makes sense with a cache; add --cache-mb "
                 "(or drop --warm)\n",
                 argv[0]);
    return 2;
  }
  if (coop_cache && !cache_on) {
    std::fprintf(stderr,
                 "%s: --coop-cache requires a cache; add --cache-mb\n",
                 argv[0]);
    return 2;
  }
  if (!replay_file.empty() && !dump_trace_file.empty()) {
    std::fprintf(stderr,
                 "%s: --replay and --dump-trace conflict (replay consumes a "
                 "trace, dump-trace only generates one)\n",
                 argv[0]);
    return 2;
  }
  // Validate output paths up front so a bad path fails in milliseconds,
  // not after the whole simulation has run.
  for (const std::string* out : {&trace_out, &metrics_out}) {
    if (out->empty()) continue;
    std::ofstream probe(*out);
    if (!probe) {
      std::fprintf(stderr, "%s: cannot write %s\n", argv[0], out->c_str());
      return 2;
    }
  }

  if (!dump_trace_file.empty()) {
    workload::TraceGenConfig tg;
    tg.clients = clients;
    tg.ops_per_client = ops;
    tg.write_fraction = is_write ? 0.7 : 0.3;
    tg.seed = seed;
    std::ofstream out(dump_trace_file);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", dump_trace_file.c_str());
      return 1;
    }
    out << workload::format_trace(workload::generate_trace(tg));
    std::printf("wrote %d x %d trace records to %s\n", clients, ops,
                dump_trace_file.c_str());
    return 0;
  }

  auto params = cluster::ClusterParams::trojans();
  params.geometry.nodes = nodes;
  params.geometry.disks_per_node = disks;
  params.geometry.block_bytes = block;
  params.geometry.blocks_per_disk = (10ull << 30) / block;
  params.disk.store_data = false;

  sim::Simulation sim;
  obs::Hub hub;
  if (!trace_out.empty() || !metrics_out.empty()) {
    hub.tracing = !trace_out.empty();
    sim.set_hub(&hub);
  }
  cluster::Cluster cluster(sim, params);
  cdd::CddFabric fabric(cluster);

  raid::EngineParams ep;
  ep.background_mirrors = bg_mirrors;
  ep.use_locks = locks;
  ep.read_window = window;
  ep.write_window = window;
  auto engine = workload::make_engine(arch, fabric, ep);

  cache::CacheParams cp;
  if (cache_policy == "none") {
    cp.capacity_blocks = 0;
  } else if (cache_policy == "wt" || cache_policy == "wb") {
    cp.capacity_blocks = static_cast<std::uint64_t>(
        cache_mb * 1024.0 * 1024.0 / static_cast<double>(block));
    cp.write_policy = cache_policy == "wb"
                          ? cache::WritePolicy::kWriteBack
                          : cache::WritePolicy::kWriteThrough;
  } else {
    std::fprintf(stderr, "unknown cache policy: %s\n", cache_policy.c_str());
    return 2;
  }
  if (cache_evict == "2q") cp.eviction = cache::EvictionPolicy::k2Q;
  else if (cache_evict != "lru") {
    std::fprintf(stderr, "unknown eviction policy: %s\n", cache_evict.c_str());
    return 2;
  }
  cp.cooperative = coop_cache;
  cache::CacheFabric block_cache(cluster, cp);
  engine->attach_cache(&block_cache);

  for (int f : fails) {
    if (f < 0 || f >= cluster.total_disks()) {
      std::fprintf(stderr, "no such disk: %d\n", f);
      return 2;
    }
    cluster.disk(f).fail();
  }

  auto export_obs = [&]() -> int {
    if (!trace_out.empty()) {
      std::string err;
      if (!hub.tracer().export_chrome(trace_out, sim.now(), &err)) {
        std::fprintf(stderr, "%s\n", err.c_str());
        return 1;
      }
      std::printf("trace               : %zu spans -> %s\n",
                  hub.tracer().spans().size(), trace_out.c_str());
    }
    if (!metrics_out.empty()) {
      obs::collect_cluster(hub.registry(), cluster, &fabric, &block_cache);
      std::ofstream out(metrics_out);
      out << hub.registry().snapshot_json() << "\n";
      if (!out) {
        std::fprintf(stderr, "cannot write %s\n", metrics_out.c_str());
        return 1;
      }
      std::printf("metrics             : %s\n", metrics_out.c_str());
    }
    return 0;
  };

  if (!replay_file.empty()) {
    std::ifstream in(replay_file);
    if (!in) {
      std::fprintf(stderr, "cannot read %s\n", replay_file.c_str());
      return 1;
    }
    std::vector<workload::TraceRecord> recs;
    try {
      recs = workload::parse_trace(in);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "%s\n", e.what());
      return 1;
    }
    std::printf("raidxsim: replaying %zu trace records from %s on %s\n",
                recs.size(), replay_file.c_str(), engine->name().c_str());
    const auto tr = workload::replay_trace(*engine, recs);
    std::printf("\nelapsed             : %8.3f s\n",
                sim::to_seconds(tr.elapsed));
    std::printf("moved               : %8.2f MB read, %8.2f MB written\n",
                static_cast<double>(tr.bytes_read) / 1e6,
                static_cast<double>(tr.bytes_written) / 1e6);
    std::printf("aggregate bandwidth : %8.2f MB/s\n", tr.aggregate_mbs);
    std::printf("read latency        : mean %.2f ms, p95 %.2f ms\n",
                tr.read_latency.mean() / 1e6,
                sim::to_milliseconds(tr.read_latency.percentile(0.95)));
    std::printf("write latency       : mean %.2f ms, p95 %.2f ms\n",
                tr.write_latency.mean() / 1e6,
                sim::to_milliseconds(tr.write_latency.percentile(0.95)));
    return export_obs();
  }

  workload::ParallelIoConfig cfg;
  cfg.clients = clients;
  cfg.op = is_write ? workload::IoOp::kWrite : workload::IoOp::kRead;
  cfg.bytes_per_op = bytes;
  cfg.ops_per_client = ops;
  cfg.scattered = scattered;
  cfg.warm_passes = warm;
  cfg.seed = seed;
  if (auto* srv = dynamic_cast<nfs::NfsEngine*>(engine.get())) {
    cfg.exclude_node = srv->server_node();
  }

  std::printf("raidxsim: %s on %dx%d (%s), %d clients x %d x %.2f MB %s%s\n",
              engine->name().c_str(), nodes, disks,
              params.geometry.describe().c_str(), clients, ops,
              static_cast<double>(bytes) / 1e6,
              is_write ? "write" : "read", scattered ? " (scattered)" : "");
  if (!fails.empty()) {
    std::printf("failed disks:");
    for (int f : fails) std::printf(" D%d", f);
    std::printf("\n");
  }

  workload::ParallelIoResult r;
  try {
    r = workload::run_parallel_io(*engine, cfg);
  } catch (const std::exception& e) {
    std::printf("run failed: %s\n", e.what());
    return 1;
  }

  std::printf("\naggregate bandwidth : %8.2f MB/s (foreground)\n",
              r.aggregate_mbs);
  std::printf("sustained bandwidth : %8.2f MB/s (incl. background drain)\n",
              r.sustained_mbs);
  std::printf("elapsed             : %8.3f s\n", sim::to_seconds(r.elapsed));
  std::printf("op latency          : mean %.2f ms, p50 %.2f, p95 %.2f, "
              "max %.2f\n",
              r.op_latency.mean() / 1e6,
              sim::to_milliseconds(r.op_latency.percentile(0.5)),
              sim::to_milliseconds(r.op_latency.percentile(0.95)),
              sim::to_milliseconds(r.op_latency.max()));
  if (block_cache.enabled()) {
    const auto& cs = block_cache.stats();
    std::printf("cache               : %.1f MB/node %s%s, %s\n", cache_mb,
                cache_policy.c_str(), coop_cache ? " cooperative" : "",
                cache_evict.c_str());
    std::printf("cache hits          : %llu local, %llu peer, %llu misses "
                "(%.1f%% hit)\n",
                static_cast<unsigned long long>(cs.hits),
                static_cast<unsigned long long>(cs.peer_hits),
                static_cast<unsigned long long>(cs.misses),
                100.0 * cs.hit_ratio());
    std::printf("cache traffic       : %llu fills, %llu absorbed writes, "
                "%llu invalidations, %llu flushes, %llu evictions\n",
                static_cast<unsigned long long>(cs.fills),
                static_cast<unsigned long long>(cs.writes_absorbed),
                static_cast<unsigned long long>(cs.invalidations),
                static_cast<unsigned long long>(cs.flushes),
                static_cast<unsigned long long>(cs.evictions));
  }

  if (verbose) {
    std::printf("\nper-client completion:\n");
    for (std::size_t c = 0; c < r.clients.size(); ++c) {
      std::printf("  client %2zu: %8.3f s, %6.2f MB\n", c,
                  sim::to_seconds(r.clients[c].end - r.clients[c].start),
                  static_cast<double>(r.clients[c].bytes) / 1e6);
    }
    std::printf("\nper-disk utilization (busy fraction):\n");
    for (int d = 0; d < cluster.total_disks(); ++d) {
      const auto& disk = cluster.disk(d);
      std::printf("  D%-2d: %5.1f%%  (%llu reads, %llu writes)\n", d,
                  100.0 * static_cast<double>(disk.busy_time()) /
                      static_cast<double>(sim.now()),
                  static_cast<unsigned long long>(disk.reads()),
                  static_cast<unsigned long long>(disk.writes()));
    }
    std::printf("\nCDD requests: %llu local, %llu remote\n",
                static_cast<unsigned long long>(fabric.local_requests()),
                static_cast<unsigned long long>(fabric.remote_requests()));
  }
  return export_obs();
}
