// Table 2 reproduction: expected peak performance of the four RAID
// architectures, from the closed-form model, evaluated on the Trojans
// parameters (n = 16 disks, B = 18 MB/s, m = 2048 blocks of 32 KB, with R
// and W derived from the disk model's random single-block service time).
#include <cstdio>

#include "analytic/model.hpp"
#include "disk/disk.hpp"
#include "sim/stats.hpp"

namespace {

using namespace raidx;
using analytic::Arch;
using analytic::ModelParams;

std::string fmt_mbs(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.1f", v);
  return buf;
}

std::string fmt_ms(sim::Time t) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.1f", sim::to_milliseconds(t));
  return buf;
}

}  // namespace

int main() {
  // Derive R and W from the same disk model the simulator uses: random
  // single-block (32 KB) access = overhead + average seek + rotation +
  // transfer.
  sim::Simulation sim;
  disk::DiskParams dp;
  dp.block_bytes = 32'768;
  dp.total_blocks = 327'680;
  disk::Disk probe(sim, dp, 0);
  const sim::Time r = probe.service_time(dp.total_blocks / 2, 1,
                                         /*sequential=*/false);
  const sim::Time w = r;  // symmetric mechanical model

  ModelParams p;
  p.n = 16;
  p.disk_bw_mbs = dp.media_rate_mbs;
  p.m = 2048;  // a 64 MB file in 32 KB blocks
  p.r = r;
  p.w = w;

  std::printf(
      "Table 2: expected peak performance of four RAID architectures\n"
      "n = %d disks, B = %.0f MB/s, m = %llu blocks, R = W = %.1f ms\n\n",
      p.n, p.disk_bw_mbs, static_cast<unsigned long long>(p.m),
      sim::to_milliseconds(p.r));

  const Arch archs[] = {Arch::kRaid0, Arch::kRaid5, Arch::kChained,
                        Arch::kRaidX};

  {
    std::printf("Max I/O bandwidth (MB/s):\n");
    sim::TablePrinter t({"indicator", "RAID-0", "RAID-5",
                         "Chained Declustering", "RAID-x"});
    auto row = [&](const char* name, double (*f)(Arch, const ModelParams&)) {
      std::vector<std::string> cells = {name};
      for (Arch a : archs) cells.push_back(fmt_mbs(f(a, p)));
      t.add_row(std::move(cells));
    };
    row("Read", analytic::read_bandwidth);
    row("Large write", analytic::large_write_bandwidth);
    row("Small write", analytic::small_write_bandwidth);
    t.print();
    std::printf("\n");
  }

  {
    std::printf("Parallel read/write times (ms):\n");
    sim::TablePrinter t({"indicator", "RAID-0", "RAID-5",
                         "Chained Declustering", "RAID-x"});
    auto row = [&](const char* name,
                   sim::Time (*f)(Arch, const ModelParams&)) {
      std::vector<std::string> cells = {name};
      for (Arch a : archs) cells.push_back(fmt_ms(f(a, p)));
      t.add_row(std::move(cells));
    };
    row("Large read (m blocks)", analytic::large_read_time);
    row("Small read (1 block)", analytic::small_read_time);
    row("Large write (m blocks)", analytic::large_write_time);
    row("Small write (1 block)", analytic::small_write_time);
    t.print();
    std::printf("\n");
  }

  {
    std::printf("Max fault coverage:\n");
    sim::TablePrinter t({"RAID-0", "RAID-5", "Chained Declustering",
                         "RAID-x"});
    std::vector<std::string> cells;
    for (Arch a : archs) cells.push_back(analytic::fault_coverage(a, p));
    t.add_row(std::move(cells));
    t.print();
  }
  return 0;
}
