// Lazy coroutine task used as the process abstraction of the simulator.
//
// Every concurrent activity in the simulated cluster -- a client issuing
// I/O, a cooperative-disk-driver server loop, a disk arm, a rebuild sweep --
// is a Task<> coroutine.  Tasks compose with `co_await child()` (the awaiting
// parent is resumed when the child runs to completion) and are driven at the
// top level by Simulation::spawn.
//
// Design notes (and why):
//  * Lazy start: a Task does nothing until awaited or spawned, so building a
//    pipeline of tasks has no side effects and ownership is unambiguous.
//  * Symmetric transfer in final_suspend avoids unbounded recursion when
//    long chains of children complete at the same instant.
//  * Exceptions propagate across co_await; a top-level task that throws
//    surfaces the exception from Simulation::run, never std::terminate.
#pragma once

#include <coroutine>
#include <cstdint>
#include <exception>
#include <utility>

#include "sim/frame_pool.hpp"

namespace raidx::sim {

namespace detail {

struct PromiseBase {
  std::coroutine_handle<> continuation{};
  std::exception_ptr exception{};
  // Set by Simulation::spawn on top-level frames only: final_suspend calls
  // on_final(owner, this) so the simulation retires the process in O(1)
  // instead of periodically scanning every live process.  process_slot is
  // the frame's index in the owner's process table (kept current by the
  // owner on swap-removal).
  void (*on_final)(void*, PromiseBase*) = nullptr;
  void* owner = nullptr;
  std::uint32_t process_slot = 0;

  // Frames come from the current Simulation's size-class pool (global heap
  // when no Simulation is alive); see sim/frame_pool.hpp for the lifetime
  // rule this implies.
  static void* operator new(std::size_t n) { return FramePool::allocate(n); }
  static void operator delete(void* p, std::size_t) noexcept {
    FramePool::deallocate(p);
  }
  static void operator delete(void* p) noexcept { FramePool::deallocate(p); }

  struct FinalAwaiter {
    bool await_ready() const noexcept { return false; }
    template <typename Promise>
    std::coroutine_handle<> await_suspend(
        std::coroutine_handle<Promise> h) noexcept {
      PromiseBase& p = h.promise();
      if (p.continuation) return p.continuation;
      // Top-level frame: tell the owning simulation it can be reclaimed.
      // The frame stays suspended here; the owner destroys it later, never
      // from inside this resume.
      if (p.on_final) p.on_final(p.owner, &p);
      return std::noop_coroutine();
    }
    void await_resume() const noexcept {}
  };

  std::suspend_always initial_suspend() noexcept { return {}; }
  FinalAwaiter final_suspend() noexcept { return {}; }
  void unhandled_exception() { exception = std::current_exception(); }
};

}  // namespace detail

/// A lazily-started coroutine producing a value of type T (or void).
template <typename T = void>
class [[nodiscard]] Task;

template <>
class [[nodiscard]] Task<void> {
 public:
  struct promise_type : detail::PromiseBase {
    Task get_return_object() {
      return Task{std::coroutine_handle<promise_type>::from_promise(*this)};
    }
    void return_void() noexcept {}
  };
  using Handle = std::coroutine_handle<promise_type>;

  Task() = default;
  explicit Task(Handle h) : handle_(h) {}
  Task(Task&& other) noexcept
      : handle_(std::exchange(other.handle_, nullptr)) {}
  Task& operator=(Task&& other) noexcept {
    if (this != &other) {
      destroy();
      handle_ = std::exchange(other.handle_, nullptr);
    }
    return *this;
  }
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  ~Task() { destroy(); }

  bool valid() const { return handle_ != nullptr; }
  bool done() const { return handle_ && handle_.done(); }

  /// Awaiting a task starts it and suspends the awaiter until it completes.
  auto operator co_await() && noexcept {
    struct Awaiter {
      Handle handle;
      bool await_ready() const noexcept { return !handle || handle.done(); }
      std::coroutine_handle<> await_suspend(
          std::coroutine_handle<> cont) noexcept {
        handle.promise().continuation = cont;
        return handle;
      }
      void await_resume() const {
        if (handle && handle.promise().exception) {
          std::rethrow_exception(handle.promise().exception);
        }
      }
    };
    return Awaiter{handle_};
  }

  /// Used by Simulation::spawn: release ownership of the frame.  The caller
  /// becomes responsible for destroying the handle once done.
  Handle release() { return std::exchange(handle_, nullptr); }

 private:
  void destroy() {
    if (handle_) {
      handle_.destroy();
      handle_ = nullptr;
    }
  }
  Handle handle_{};
};

template <typename T>
class [[nodiscard]] Task {
 public:
  struct promise_type : detail::PromiseBase {
    T value{};
    Task get_return_object() {
      return Task{std::coroutine_handle<promise_type>::from_promise(*this)};
    }
    template <typename U>
    void return_value(U&& v) {
      value = std::forward<U>(v);
    }
  };
  using Handle = std::coroutine_handle<promise_type>;

  Task() = default;
  explicit Task(Handle h) : handle_(h) {}
  Task(Task&& other) noexcept
      : handle_(std::exchange(other.handle_, nullptr)) {}
  Task& operator=(Task&& other) noexcept {
    if (this != &other) {
      destroy();
      handle_ = std::exchange(other.handle_, nullptr);
    }
    return *this;
  }
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  ~Task() { destroy(); }

  bool valid() const { return handle_ != nullptr; }
  bool done() const { return handle_ && handle_.done(); }

  auto operator co_await() && noexcept {
    struct Awaiter {
      Handle handle;
      bool await_ready() const noexcept { return !handle || handle.done(); }
      std::coroutine_handle<> await_suspend(
          std::coroutine_handle<> cont) noexcept {
        handle.promise().continuation = cont;
        return handle;
      }
      T await_resume() const {
        if (!handle) return T{};  // awaiting a moved-from/empty task
        if (handle.promise().exception) {
          std::rethrow_exception(handle.promise().exception);
        }
        return std::move(handle.promise().value);
      }
    };
    return Awaiter{handle_};
  }

  /// Release ownership of the frame (parity with Task<void>); the caller
  /// becomes responsible for destroying the handle once done.
  Handle release() { return std::exchange(handle_, nullptr); }

 private:
  void destroy() {
    if (handle_) {
      handle_.destroy();
      handle_ = nullptr;
    }
  }
  Handle handle_{};
};

}  // namespace raidx::sim
