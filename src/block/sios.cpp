#include "block/sios.hpp"

#include <cstdio>

namespace raidx::block {

std::string ArrayGeometry::describe() const {
  char buf[128];
  std::snprintf(buf, sizeof(buf),
                "%dx%d array (%d disks, %llu blocks/disk, %u B blocks)",
                nodes, disks_per_node, total_disks(),
                static_cast<unsigned long long>(blocks_per_disk),
                block_bytes);
  return buf;
}

}  // namespace raidx::block
