#include "workload/parallel_io.hpp"

#include <cassert>
#include <stdexcept>

#include "block/payload.hpp"
#include "obs/obs.hpp"
#include "sim/random.hpp"
#include "sim/sync.hpp"

namespace raidx::workload {

namespace {

struct Shared {
  raid::ArrayController& engine;
  const ParallelIoConfig& config;
  sim::Barrier barrier;
  std::vector<ClientResult>& results;
  sim::LatencyRecorder& latency;
};

sim::Task<> client_task(Shared& sh, int client_idx, std::uint64_t region_lba,
                        std::uint64_t region_blocks, sim::Rng rng) {
  auto& sim = sh.engine.fabric().cluster().sim();
  const int num_nodes = sh.engine.fabric().cluster().num_nodes();
  int node;
  if (sh.config.exclude_node >= 0) {
    node = client_idx % (num_nodes - 1);
    if (node >= sh.config.exclude_node) ++node;
  } else {
    node = client_idx % num_nodes;
  }
  const std::uint32_t bs = sh.engine.block_bytes();
  const auto blocks_per_op =
      static_cast<std::uint32_t>(sh.config.bytes_per_op / bs);
  assert(blocks_per_op > 0);
  const std::size_t op_bytes = static_cast<std::size_t>(blocks_per_op) * bs;
  // Reads land in a real buffer; writes carry a zero-run payload -- the
  // simulated timing depends only on sizes, and skipping the per-client
  // gigabytes of host memory is what keeps the large sweeps fast.
  std::vector<std::byte> buffer(sh.config.op == IoOp::kRead ? op_bytes : 0);
  const block::Payload wpayload = block::Payload::zeros(op_bytes);

  // Draw the whole access sequence up front (pure RNG, no simulated time)
  // so warm passes replay exactly the LBAs the measured pass will touch.
  std::vector<std::uint64_t> lbas(
      static_cast<std::size_t>(sh.config.ops_per_client));
  std::uint64_t pos = region_lba;
  for (int i = 0; i < sh.config.ops_per_client; ++i) {
    if (sh.config.scattered) {
      lbas[static_cast<std::size_t>(i)] =
          region_lba + rng.uniform_u64(0, region_blocks - blocks_per_op);
    } else {
      lbas[static_cast<std::size_t>(i)] = pos;
      pos += blocks_per_op;
      if (pos + blocks_per_op > region_lba + region_blocks) pos = region_lba;
    }
  }

  ClientResult& r = sh.results[static_cast<std::size_t>(client_idx)];
  for (int pass = 0; pass <= sh.config.warm_passes; ++pass) {
    const bool measured = pass == sh.config.warm_passes;
    co_await sh.barrier.arrive_and_wait();
    if (measured) r.start = sim.now();
    for (int i = 0; i < sh.config.ops_per_client; ++i) {
      const std::uint64_t lba = lbas[static_cast<std::size_t>(i)];
      const sim::Time t0 = sim.now();
      {
        obs::Span op = obs::trace_span(
            sim, {}, "workload.op", obs::Track::kRequest, node,
            obs::SpanArgs{}
                .tag("client", client_idx)
                .tag("node", node)
                .tag("lba", static_cast<std::int64_t>(lba))
                .tag("write", sh.config.op == IoOp::kWrite ? 1 : 0)
                .tag("measured", measured ? 1 : 0));
        if (sh.config.op == IoOp::kRead) {
          co_await sh.engine.read(node, lba, blocks_per_op, buffer,
                                  op.ctx());
        } else {
          co_await sh.engine.write(node, lba, wpayload, op.ctx());
        }
      }
      if (measured) {
        sh.latency.add(sim.now() - t0);
        r.bytes += sh.config.bytes_per_op;
        if (obs::Hub* hub = sim.hub()) {
          hub->registry()
              .histogram(sh.config.op == IoOp::kRead
                             ? "workload.op_latency_us.read"
                             : "workload.op_latency_us.write")
              .observe(static_cast<std::uint64_t>((sim.now() - t0) / 1000));
        }
      }
    }
  }
  r.end = sim.now();
}

}  // namespace

ParallelIoResult run_parallel_io(raid::ArrayController& engine,
                                 const ParallelIoConfig& config) {
  auto& sim = engine.fabric().cluster().sim();
  const std::uint32_t bs = engine.block_bytes();
  if (config.bytes_per_op % bs != 0) {
    throw std::invalid_argument("bytes_per_op must be whole blocks");
  }
  // Size regions to the workload, not to the layout's capacity: every
  // architecture then covers the same physical footprint.
  const std::uint64_t needed =
      config.scattered
          ? std::max(config.bytes_per_op / bs, config.scatter_region_blocks)
          : static_cast<std::uint64_t>(config.ops_per_client) *
                (config.bytes_per_op / bs);
  const std::uint64_t region_blocks = needed;
  if (region_blocks * static_cast<std::uint64_t>(config.clients) >
      engine.logical_blocks()) {
    throw std::invalid_argument("client region too small for workload");
  }

  ParallelIoResult result;
  result.clients.resize(static_cast<std::size_t>(config.clients));

  Shared sh{engine, config, sim::Barrier(sim, config.clients),
            result.clients, result.op_latency};
  sim::Rng root(config.seed);
  for (int c = 0; c < config.clients; ++c) {
    sim.spawn(client_task(sh, c,
                          static_cast<std::uint64_t>(c) * region_blocks,
                          region_blocks, root.fork()));
  }
  sim.run();  // drains foreground and background alike

  // Write-back caches may still hold dirty blocks below the flusher's
  // high-water mark; drain them so the sustained figure pays for every
  // deferred write (the same accounting RAID-x image flushes get).
  if (engine.cache() != nullptr) {
    sim.spawn(engine.flush_cache());
    sim.run();
  }

  sim::Time first = -1, last = 0;
  std::uint64_t bytes = 0;
  for (const auto& cr : result.clients) {
    if (first < 0 || cr.start < first) first = cr.start;
    if (cr.end > last) last = cr.end;
    bytes += cr.bytes;
  }
  result.elapsed = last - first;
  result.aggregate_mbs = sim::bandwidth_mbs(bytes, result.elapsed);
  result.background_drain = sim.now() - last;
  result.sustained_mbs = sim::bandwidth_mbs(bytes, sim.now() - first);
  return result;
}

}  // namespace raidx::workload
