#include "ha/ha.hpp"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <utility>

#include "cache/cache_fabric.hpp"
#include "cluster/cluster.hpp"
#include "obs/obs.hpp"
#include "raid/controller.hpp"
#include "sim/token_bucket.hpp"

namespace raidx::ha {

namespace {

constexpr sim::Time kUnknownFaultTime = -1;

/// Bit c set when node n racks devices of class c, for SparePool seeding.
std::vector<std::uint8_t> device_class_masks(const cluster::Cluster& cluster) {
  const auto& geo = cluster.geometry();
  std::vector<std::uint8_t> masks(static_cast<std::size_t>(geo.nodes), 0);
  for (int node = 0; node < geo.nodes; ++node) {
    for (int row = 0; row < geo.disks_per_node; ++row) {
      masks[static_cast<std::size_t>(node)] |= static_cast<std::uint8_t>(
          1u << static_cast<int>(
              cluster.device_class(geo.disk_id(row, node))));
    }
  }
  return masks;
}

std::string disk_detail(int disk, const char* extra = nullptr) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "disk=%d%s%s", disk, extra ? " " : "",
                extra ? extra : "");
  return buf;
}

}  // namespace

Orchestrator::Orchestrator(raid::ArrayController& engine, HaParams params)
    : engine_(engine),
      fabric_(engine.fabric()),
      params_(params),
      spares_(fabric_.cluster().num_nodes(), params.spares_per_node,
              params.global_spares, device_class_masks(fabric_.cluster())),
      state_(static_cast<std::size_t>(fabric_.cluster().total_disks()),
             DiskState::kHealthy),
      fault_time_(static_cast<std::size_t>(fabric_.cluster().total_disks()),
                  kUnknownFaultTime),
      missed_(static_cast<std::size_t>(fabric_.cluster().num_nodes()), 0),
      node_down_(static_cast<std::size_t>(fabric_.cluster().num_nodes()), 0),
      node_noted_(static_cast<std::size_t>(fabric_.cluster().num_nodes()),
                  0) {
  // A probe at a partitioned node with no timeout would wait forever and
  // wedge the simulation; clamp to something sane instead.
  if (params_.probe_timeout <= 0) {
    params_.probe_timeout = sim::milliseconds(50);
  }

  double rate_mbs = params_.rebuild_mbs;
  if (rate_mbs <= 0 && params_.rebuild_disk_fraction > 0) {
    rate_mbs = params_.rebuild_disk_fraction *
               fabric_.cluster().disk(0).nominal_rate_mbs();
  }
  if (rate_mbs > 0) {
    const double rate = rate_mbs * 1e6;  // bytes/s
    const double burst = std::max(
        static_cast<double>(fabric_.cluster().geometry().block_bytes),
        rate / 10.0);
    throttle_ = std::make_unique<sim::TokenBucket>(fabric_.cluster().sim(),
                                                   rate, burst);
    engine_.set_rebuild_throttle(throttle_.get());
  }

  // Detection path 1: ordinary traffic.  The listener runs synchronously
  // inside the CDD handler, so it only flips state and spawns tasks.
  fabric_.set_disk_failure_listener(
      [this](int disk) { on_disk_failure_report(disk, /*by_traffic=*/true); });

  // Detection path 2: the monitor's probe rounds.
  fabric_.cluster().sim().spawn(watch_loop());
}

Orchestrator::~Orchestrator() {
  fabric_.set_disk_failure_listener(nullptr);
  engine_.set_rebuild_throttle(nullptr);
}

void Orchestrator::note_fault_injected(int disk) {
  if (state_[static_cast<std::size_t>(disk)] != DiskState::kHealthy) return;
  fault_time_[static_cast<std::size_t>(disk)] =
      fabric_.cluster().sim().now();
  ++undetected_;
  if (!attention_active_) {
    attention_active_ = true;
    fabric_.cluster().sim().spawn(attention_loop());
  }
}

void Orchestrator::note_node_partitioned(int node) {
  if (node_noted_[static_cast<std::size_t>(node)] ||
      node_down_[static_cast<std::size_t>(node)]) {
    return;
  }
  node_noted_[static_cast<std::size_t>(node)] = 1;
  ++undetected_;
  if (!attention_active_) {
    attention_active_ = true;
    fabric_.cluster().sim().spawn(attention_loop());
  }
}

void Orchestrator::note_node_joined(int node) {
  // Healed before the monitor ever declared it down: the noted fault will
  // never be "detected", so stop holding the attention loop open for it.
  if (node_noted_[static_cast<std::size_t>(node)] &&
      !node_down_[static_cast<std::size_t>(node)]) {
    node_noted_[static_cast<std::size_t>(node)] = 0;
    --undetected_;
  }
}

void Orchestrator::note_disk_serviced(int disk) {
  auto& slot = state_[static_cast<std::size_t>(disk)];
  switch (slot) {
    case DiskState::kHealthy: {
      const auto idx = static_cast<std::size_t>(disk);
      if (fault_time_[idx] != kUnknownFaultTime) {
        // Serviced before detection: account the detection now (the
        // service visit found the dead drive), then recover normally.
        fault_time_[idx] = kUnknownFaultTime;
        --undetected_;
        ++stats_.detections;
        slot = DiskState::kFailed;
        ++recoveries_in_flight_;
        fabric_.cluster().sim().spawn(recover_disk(disk));
        break;
      }
      // Recovered slot: the operator's visit restocks the local rack
      // with a drive of the slot's own class.
      spares_.restock(fabric_.cluster().geometry().node_of(disk),
                      fabric_.cluster().device_class(disk));
      break;
    }
    case DiskState::kSwapping:
    case DiskState::kRebuilding:
      // Recovery already in progress on a spare; the serviced original
      // replenishes the rack it came from.
      spares_.restock(fabric_.cluster().geometry().node_of(disk),
                      fabric_.cluster().device_class(disk));
      break;
    case DiskState::kFailed:
    case DiskState::kDegraded:
      // No spare was available: the serviced drive IS the spare -- stock
      // it into the local rack so recover_disk's take() finds it.
      spares_.restock(fabric_.cluster().geometry().node_of(disk),
                      fabric_.cluster().device_class(disk));
      slot = DiskState::kFailed;
      ++recoveries_in_flight_;
      fabric_.cluster().sim().spawn(recover_disk(disk));
      break;
  }
}

void Orchestrator::on_disk_failure_report(int disk, bool by_traffic) {
  const auto idx = static_cast<std::size_t>(disk);
  if (state_[idx] != DiskState::kHealthy) return;  // already handled
  state_[idx] = DiskState::kFailed;
  ++stats_.detections;
  if (by_traffic) {
    ++stats_.detections_by_traffic;
  } else {
    ++stats_.detections_by_probe;
  }
  if (fault_time_[idx] != kUnknownFaultTime) {
    stats_.detection_ns.push_back(fabric_.cluster().sim().now() -
                                  fault_time_[idx]);
    --undetected_;
  }
  obs::log_event(fabric_.cluster().sim(), "ha.detected",
                 disk_detail(disk, by_traffic ? "by=traffic" : "by=probe"));
  ++recoveries_in_flight_;
  fabric_.cluster().sim().spawn(recover_disk(disk));
}

sim::Task<> Orchestrator::recover_disk(int disk) {
  auto& cluster = fabric_.cluster();
  const auto idx = static_cast<std::size_t>(disk);
  const int node = cluster.geometry().node_of(disk);
  const sim::Time injected = fault_time_[idx];
  const sim::Time detected = cluster.sim().now();
  fault_time_[idx] = kUnknownFaultTime;

  obs::Span span = obs::trace_span(
      cluster.sim(), {}, "ha.failover", obs::Track::kRequest,
      params_.monitor_node,
      obs::SpanArgs{}.tag("disk", disk).tag("node", node));

  const disk::DeviceClass cls = cluster.device_class(disk);
  if (!spares_.take(node, cls)) {
    // Nothing class-matched to fail over to; the array keeps serving via
    // its degraded path until note_disk_serviced brings a fresh drive.
    state_[idx] = DiskState::kDegraded;
    ++stats_.spare_exhausted;
    if (spares_.available(node) > 0 || spares_.global_available() > 0) {
      // Spares of the WRONG class were on the rack: a spindle cannot
      // stand in for flash (or vice versa).
      ++stats_.spare_class_mismatch;
      obs::log_event(cluster.sim(), "ha.spare_class_mismatch",
                     disk_detail(disk, disk::to_string(cls)));
    }
    obs::log_event(cluster.sim(), "ha.spare_exhausted", disk_detail(disk));
    --recoveries_in_flight_;
    co_return;
  }

  state_[idx] = DiskState::kSwapping;
  co_await cluster.sim().delay(params_.spare_swap_time);

  // The swap commits atomically at this instant: replace() hands the slot
  // a blank disk, and begin_rebuild() immediately marks every block
  // not-yet-restored -- without it, reads between the swap and the sweep's
  // own begin_rebuild() would be served zeros instead of falling back to
  // the degraded path.
  auto& d = cluster.disk(disk);
  d.replace();
  d.begin_rebuild();
  state_[idx] = DiskState::kRebuilding;
  ++stats_.failovers;
  obs::log_event(cluster.sim(), "ha.failover", disk_detail(disk));

  if (!params_.auto_rebuild) {
    // Leave the spare blank and marked rebuilding (watermark 0); a manual
    // rebuild_disk() call finishes the job.
    --recoveries_in_flight_;
    co_return;
  }

  try {
    co_await engine_.rebuild_disk(params_.monitor_node, disk);
    state_[idx] = DiskState::kHealthy;
    ++stats_.rebuilds_completed;
    const sim::Time since =
        injected != kUnknownFaultTime ? injected : detected;
    stats_.mttr_ns.push_back(cluster.sim().now() - since);
    obs::log_event(cluster.sim(), "ha.rebuilt", disk_detail(disk));
  } catch (const raid::IoError&) {
    // Second failure (or RAID-0) aborted the sweep; RebuildScope froze the
    // watermark, so the unrestored tail keeps reading degraded.
    ++stats_.rebuilds_failed;
    obs::log_event(cluster.sim(), "ha.rebuild_failed", disk_detail(disk));
  }
  --recoveries_in_flight_;
}

sim::Task<> Orchestrator::probe_round() {
  auto& cluster = fabric_.cluster();
  const auto& geo = cluster.geometry();
  for (int node = 0; node < cluster.num_nodes(); ++node) {
    ++stats_.probes_sent;
    cdd::Reply alive = co_await fabric_.probe(
        params_.monitor_node, node, -1, params_.probe_timeout);
    if (alive.timed_out) {
      auto& misses = missed_[static_cast<std::size_t>(node)];
      ++misses;
      if (misses >= params_.heartbeat_misses &&
          !node_down_[static_cast<std::size_t>(node)]) {
        declare_node_down(node);
      }
      continue;
    }
    missed_[static_cast<std::size_t>(node)] = 0;
    if (node_down_[static_cast<std::size_t>(node)]) declare_node_up(node);

    // Node is reachable: check its disks' health from device state.
    for (int row = 0; row < geo.disks_per_node; ++row) {
      const int disk = geo.disk_id(row, node);
      if (state_[static_cast<std::size_t>(disk)] != DiskState::kHealthy) {
        continue;
      }
      ++stats_.probes_sent;
      cdd::Reply r = co_await fabric_.probe(params_.monitor_node, node,
                                            disk, params_.probe_timeout);
      if (!r.timed_out && !r.ok) {
        on_disk_failure_report(disk, /*by_traffic=*/false);
      }
    }
  }
}

void Orchestrator::declare_node_down(int node) {
  node_down_[static_cast<std::size_t>(node)] = 1;
  ++stats_.nodes_declared_down;
  {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "node=%d", node);
    obs::log_event(fabric_.cluster().sim(), "ha.node_down", buf);
  }
  if (node_noted_[static_cast<std::size_t>(node)]) {
    node_noted_[static_cast<std::size_t>(node)] = 0;
    --undetected_;
  }
  // Scrub the cooperative cache: peers must stop counting on this node's
  // memory, and its directory entries are now unreachable.
  if (cache::CacheFabric* c = engine_.cache()) c->on_node_down(node);
}

void Orchestrator::declare_node_up(int node) {
  node_down_[static_cast<std::size_t>(node)] = 0;
  ++stats_.nodes_recovered;
  char buf[32];
  std::snprintf(buf, sizeof(buf), "node=%d", node);
  obs::log_event(fabric_.cluster().sim(), "ha.node_up", buf);
}

sim::Task<> Orchestrator::watch_loop() {
  auto& sim = fabric_.cluster().sim();
  for (;;) {
    // Daemon tick: parks while the simulation is otherwise idle, so a
    // monitored but quiescent cluster still lets run() terminate.
    co_await sim.daemon_delay(params_.probe_interval);
    if (attention_active_) continue;  // attention_loop is already probing
    co_await probe_round();
  }
}

sim::Task<> Orchestrator::attention_loop() {
  // Foreground: keeps the simulation alive until every noted fault has
  // been detected, so chaos runs in traffic-free windows converge.
  auto& sim = fabric_.cluster().sim();
  while (undetected_ > 0) {
    co_await probe_round();
    if (undetected_ > 0) co_await sim.delay(params_.probe_interval);
  }
  attention_active_ = false;
}

}  // namespace raidx::ha
