
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analytic/model.cpp" "src/CMakeFiles/raidx.dir/analytic/model.cpp.o" "gcc" "src/CMakeFiles/raidx.dir/analytic/model.cpp.o.d"
  "/root/repo/src/block/sios.cpp" "src/CMakeFiles/raidx.dir/block/sios.cpp.o" "gcc" "src/CMakeFiles/raidx.dir/block/sios.cpp.o.d"
  "/root/repo/src/cdd/cdd.cpp" "src/CMakeFiles/raidx.dir/cdd/cdd.cpp.o" "gcc" "src/CMakeFiles/raidx.dir/cdd/cdd.cpp.o.d"
  "/root/repo/src/cdd/lock_table.cpp" "src/CMakeFiles/raidx.dir/cdd/lock_table.cpp.o" "gcc" "src/CMakeFiles/raidx.dir/cdd/lock_table.cpp.o.d"
  "/root/repo/src/ckpt/checkpoint.cpp" "src/CMakeFiles/raidx.dir/ckpt/checkpoint.cpp.o" "gcc" "src/CMakeFiles/raidx.dir/ckpt/checkpoint.cpp.o.d"
  "/root/repo/src/cluster/cluster.cpp" "src/CMakeFiles/raidx.dir/cluster/cluster.cpp.o" "gcc" "src/CMakeFiles/raidx.dir/cluster/cluster.cpp.o.d"
  "/root/repo/src/cluster/node.cpp" "src/CMakeFiles/raidx.dir/cluster/node.cpp.o" "gcc" "src/CMakeFiles/raidx.dir/cluster/node.cpp.o.d"
  "/root/repo/src/disk/disk.cpp" "src/CMakeFiles/raidx.dir/disk/disk.cpp.o" "gcc" "src/CMakeFiles/raidx.dir/disk/disk.cpp.o.d"
  "/root/repo/src/disk/scsi_bus.cpp" "src/CMakeFiles/raidx.dir/disk/scsi_bus.cpp.o" "gcc" "src/CMakeFiles/raidx.dir/disk/scsi_bus.cpp.o.d"
  "/root/repo/src/fs/filesystem.cpp" "src/CMakeFiles/raidx.dir/fs/filesystem.cpp.o" "gcc" "src/CMakeFiles/raidx.dir/fs/filesystem.cpp.o.d"
  "/root/repo/src/net/network.cpp" "src/CMakeFiles/raidx.dir/net/network.cpp.o" "gcc" "src/CMakeFiles/raidx.dir/net/network.cpp.o.d"
  "/root/repo/src/nfs/nfs.cpp" "src/CMakeFiles/raidx.dir/nfs/nfs.cpp.o" "gcc" "src/CMakeFiles/raidx.dir/nfs/nfs.cpp.o.d"
  "/root/repo/src/raid/controller.cpp" "src/CMakeFiles/raidx.dir/raid/controller.cpp.o" "gcc" "src/CMakeFiles/raidx.dir/raid/controller.cpp.o.d"
  "/root/repo/src/raid/layout.cpp" "src/CMakeFiles/raidx.dir/raid/layout.cpp.o" "gcc" "src/CMakeFiles/raidx.dir/raid/layout.cpp.o.d"
  "/root/repo/src/raid/raid0.cpp" "src/CMakeFiles/raidx.dir/raid/raid0.cpp.o" "gcc" "src/CMakeFiles/raidx.dir/raid/raid0.cpp.o.d"
  "/root/repo/src/raid/raid1.cpp" "src/CMakeFiles/raidx.dir/raid/raid1.cpp.o" "gcc" "src/CMakeFiles/raidx.dir/raid/raid1.cpp.o.d"
  "/root/repo/src/raid/raid10.cpp" "src/CMakeFiles/raidx.dir/raid/raid10.cpp.o" "gcc" "src/CMakeFiles/raidx.dir/raid/raid10.cpp.o.d"
  "/root/repo/src/raid/raid5.cpp" "src/CMakeFiles/raidx.dir/raid/raid5.cpp.o" "gcc" "src/CMakeFiles/raidx.dir/raid/raid5.cpp.o.d"
  "/root/repo/src/raid/raidx.cpp" "src/CMakeFiles/raidx.dir/raid/raidx.cpp.o" "gcc" "src/CMakeFiles/raidx.dir/raid/raidx.cpp.o.d"
  "/root/repo/src/raid/rebuild.cpp" "src/CMakeFiles/raidx.dir/raid/rebuild.cpp.o" "gcc" "src/CMakeFiles/raidx.dir/raid/rebuild.cpp.o.d"
  "/root/repo/src/sim/event_queue.cpp" "src/CMakeFiles/raidx.dir/sim/event_queue.cpp.o" "gcc" "src/CMakeFiles/raidx.dir/sim/event_queue.cpp.o.d"
  "/root/repo/src/sim/resource.cpp" "src/CMakeFiles/raidx.dir/sim/resource.cpp.o" "gcc" "src/CMakeFiles/raidx.dir/sim/resource.cpp.o.d"
  "/root/repo/src/sim/stats.cpp" "src/CMakeFiles/raidx.dir/sim/stats.cpp.o" "gcc" "src/CMakeFiles/raidx.dir/sim/stats.cpp.o.d"
  "/root/repo/src/sim/sync.cpp" "src/CMakeFiles/raidx.dir/sim/sync.cpp.o" "gcc" "src/CMakeFiles/raidx.dir/sim/sync.cpp.o.d"
  "/root/repo/src/workload/andrew.cpp" "src/CMakeFiles/raidx.dir/workload/andrew.cpp.o" "gcc" "src/CMakeFiles/raidx.dir/workload/andrew.cpp.o.d"
  "/root/repo/src/workload/engines.cpp" "src/CMakeFiles/raidx.dir/workload/engines.cpp.o" "gcc" "src/CMakeFiles/raidx.dir/workload/engines.cpp.o.d"
  "/root/repo/src/workload/parallel_io.cpp" "src/CMakeFiles/raidx.dir/workload/parallel_io.cpp.o" "gcc" "src/CMakeFiles/raidx.dir/workload/parallel_io.cpp.o.d"
  "/root/repo/src/workload/trace.cpp" "src/CMakeFiles/raidx.dir/workload/trace.cpp.o" "gcc" "src/CMakeFiles/raidx.dir/workload/trace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
