// Unit tests for the discrete-event simulation engine.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "sim/channel.hpp"
#include "sim/event_queue.hpp"
#include "sim/join.hpp"
#include "sim/random.hpp"
#include "sim/resource.hpp"
#include "sim/stats.hpp"
#include "sim/sync.hpp"
#include "sim/task.hpp"
#include "sim/time.hpp"

namespace raidx::sim {
namespace {

TEST(Time, Conversions) {
  EXPECT_EQ(seconds(1.0), 1'000'000'000);
  EXPECT_EQ(milliseconds(1.5), 1'500'000);
  EXPECT_EQ(microseconds(2.0), 2'000);
  EXPECT_DOUBLE_EQ(to_seconds(seconds(3.25)), 3.25);
}

TEST(Time, TransferTime) {
  // 1 MB at 10 MB/s = 0.1 s.
  EXPECT_EQ(transfer_time(1'000'000, 10.0), seconds(0.1));
  EXPECT_DOUBLE_EQ(bandwidth_mbs(1'000'000, seconds(0.1)), 10.0);
  EXPECT_DOUBLE_EQ(bandwidth_mbs(123, 0), 0.0);
}

Task<> simple_delayer(Simulation& sim, Time d, int* out) {
  co_await sim.delay(d);
  *out = 42;
}

TEST(Simulation, DelayAdvancesClock) {
  Simulation sim;
  int result = 0;
  sim.spawn(simple_delayer(sim, milliseconds(5), &result));
  sim.run();
  EXPECT_EQ(result, 42);
  EXPECT_EQ(sim.now(), milliseconds(5));
}

TEST(Simulation, CallbacksFireInTimeOrder) {
  Simulation sim;
  std::vector<int> order;
  sim.schedule(milliseconds(3), [&] { order.push_back(3); });
  sim.schedule(milliseconds(1), [&] { order.push_back(1); });
  sim.schedule(milliseconds(2), [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Simulation, EqualTimestampsFireInInsertionOrder) {
  Simulation sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.schedule(milliseconds(1), [&order, i] { order.push_back(i); });
  }
  sim.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(Simulation, RunUntilStopsAtDeadline) {
  Simulation sim;
  int fired = 0;
  sim.schedule(milliseconds(1), [&] { ++fired; });
  sim.schedule(milliseconds(10), [&] { ++fired; });
  EXPECT_FALSE(sim.run_until(milliseconds(5)));
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.now(), milliseconds(5));
  EXPECT_TRUE(sim.run_until(milliseconds(100)));
  EXPECT_EQ(fired, 2);
}

Task<int> answer() { co_return 7; }

Task<> chain(int* out) {
  int v = co_await answer();
  *out = v * 6;
}

TEST(Task, ValueTasksCompose) {
  Simulation sim;
  int result = 0;
  sim.spawn(chain(&result));
  sim.run();
  EXPECT_EQ(result, 42);
}

Task<> thrower() {
  throw std::runtime_error("boom");
  co_return;
}

Task<> catcher(bool* caught) {
  try {
    co_await thrower();
  } catch (const std::runtime_error&) {
    *caught = true;
  }
}

TEST(Task, ExceptionsPropagateAcrossAwait) {
  Simulation sim;
  bool caught = false;
  sim.spawn(catcher(&caught));
  sim.run();
  EXPECT_TRUE(caught);
}

TEST(Task, TopLevelExceptionSurfacesFromRun) {
  Simulation sim;
  sim.spawn(thrower());
  EXPECT_THROW(sim.run(), std::runtime_error);
}

Task<> hold_resource(Simulation& sim, Resource& r, Time hold,
                     std::vector<int>* order, int id) {
  auto guard = co_await r.acquire();
  order->push_back(id);
  co_await sim.delay(hold);
}

TEST(Resource, SerializesAtCapacityOne) {
  Simulation sim;
  Resource r(sim, 1);
  std::vector<int> order;
  for (int i = 0; i < 4; ++i) {
    sim.spawn(hold_resource(sim, r, milliseconds(2), &order, i));
  }
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
  // 4 holders x 2 ms, serialized.
  EXPECT_EQ(sim.now(), milliseconds(8));
}

TEST(Resource, CapacityTwoOverlaps) {
  Simulation sim;
  Resource r(sim, 2);
  std::vector<int> order;
  for (int i = 0; i < 4; ++i) {
    sim.spawn(hold_resource(sim, r, milliseconds(2), &order, i));
  }
  sim.run();
  EXPECT_EQ(sim.now(), milliseconds(4));
}

Task<> hold_with_priority(Simulation& sim, Resource& r, int prio,
                          std::vector<int>* order, int id) {
  auto guard = co_await r.acquire(prio);
  order->push_back(id);
  co_await sim.delay(milliseconds(1));
}

Task<> priority_scenario(Simulation& sim, Resource& r,
                         std::vector<int>* order) {
  // Occupy the resource, then queue a background and a foreground waiter;
  // the foreground waiter must be served first despite arriving second.
  auto guard = co_await r.acquire();
  sim.spawn(hold_with_priority(sim, r, 1, order, 100));  // background
  co_await sim.delay(milliseconds(1));
  sim.spawn(hold_with_priority(sim, r, 0, order, 200));  // foreground
  co_await sim.delay(milliseconds(1));
}

TEST(Resource, ForegroundOvertakesBackground) {
  Simulation sim;
  Resource r(sim, 1, /*priority_levels=*/2);
  std::vector<int> order;
  sim.spawn(priority_scenario(sim, r, &order));
  sim.run();
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], 200);
  EXPECT_EQ(order[1], 100);
}

TEST(Resource, BusyTimeTracksUtilization) {
  Simulation sim;
  Resource r(sim, 1);
  std::vector<int> order;
  sim.spawn(hold_resource(sim, r, milliseconds(3), &order, 0));
  sim.run();
  EXPECT_EQ(r.busy_time(), milliseconds(3));
}

Task<> producer(Simulation& sim, Channel<int>& ch, int count) {
  for (int i = 0; i < count; ++i) {
    co_await sim.delay(milliseconds(1));
    ch.send(i);
  }
}

Task<> consumer(Channel<int>& ch, int count, std::vector<int>* got) {
  for (int i = 0; i < count; ++i) {
    got->push_back(co_await ch.recv());
  }
}

TEST(Channel, DeliversInOrder) {
  Simulation sim;
  Channel<int> ch(sim);
  std::vector<int> got;
  sim.spawn(consumer(ch, 5, &got));
  sim.spawn(producer(sim, ch, 5));
  sim.run();
  EXPECT_EQ(got, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Channel, BuffersWhenNoReceiver) {
  Simulation sim;
  Channel<int> ch(sim);
  ch.send(1);
  ch.send(2);
  EXPECT_EQ(ch.pending(), 2u);
  std::vector<int> got;
  sim.spawn(consumer(ch, 2, &got));
  sim.run();
  EXPECT_EQ(got, (std::vector<int>{1, 2}));
}

Task<> oneshot_waiter(Oneshot<int>& os, int* got) { *got = co_await os.wait(); }

Task<> oneshot_setter(Simulation& sim, Oneshot<int>& os) {
  co_await sim.delay(milliseconds(2));
  os.set(99);
}

TEST(Oneshot, DeliversValue) {
  Simulation sim;
  Oneshot<int> os(sim);
  int got = 0;
  sim.spawn(oneshot_waiter(os, &got));
  sim.spawn(oneshot_setter(sim, os));
  sim.run();
  EXPECT_EQ(got, 99);
  EXPECT_EQ(sim.now(), milliseconds(2));
}

Task<> barrier_party(Simulation& sim, Barrier& b, Time arrive_at,
                     std::vector<Time>* release_times) {
  co_await sim.delay(arrive_at);
  co_await b.arrive_and_wait();
  release_times->push_back(sim.now());
}

TEST(Barrier, ReleasesAllAtLastArrival) {
  Simulation sim;
  Barrier b(sim, 3);
  std::vector<Time> releases;
  sim.spawn(barrier_party(sim, b, milliseconds(1), &releases));
  sim.spawn(barrier_party(sim, b, milliseconds(5), &releases));
  sim.spawn(barrier_party(sim, b, milliseconds(3), &releases));
  sim.run();
  ASSERT_EQ(releases.size(), 3u);
  for (Time t : releases) EXPECT_EQ(t, milliseconds(5));
}

TEST(Barrier, IsReusableAcrossGenerations) {
  Simulation sim;
  Barrier b(sim, 2);
  std::vector<Time> releases;
  // Generation 1.
  sim.spawn(barrier_party(sim, b, milliseconds(1), &releases));
  sim.spawn(barrier_party(sim, b, milliseconds(2), &releases));
  sim.run();
  // Generation 2.
  sim.spawn(barrier_party(sim, b, milliseconds(1), &releases));
  sim.spawn(barrier_party(sim, b, milliseconds(4), &releases));
  sim.run();
  ASSERT_EQ(releases.size(), 4u);
  EXPECT_EQ(releases[2], milliseconds(2) + milliseconds(4));
}

Task<> joiner_child(Simulation& sim, Time d, int* count) {
  co_await sim.delay(d);
  ++*count;
}

Task<> joiner_parent(Simulation& sim, int* count, Time* done_at) {
  Joiner join(sim);
  join.spawn(joiner_child(sim, milliseconds(1), count));
  join.spawn(joiner_child(sim, milliseconds(7), count));
  join.spawn(joiner_child(sim, milliseconds(3), count));
  co_await join.wait();
  *done_at = sim.now();
}

TEST(Joiner, WaitsForSlowestChild) {
  Simulation sim;
  int count = 0;
  Time done_at = 0;
  sim.spawn(joiner_parent(sim, &count, &done_at));
  sim.run();
  EXPECT_EQ(count, 3);
  EXPECT_EQ(done_at, milliseconds(7));
}

Task<> failing_child() {
  throw std::logic_error("child failed");
  co_return;
}

Task<> joiner_child_noop(Simulation& sim, Time d) { co_await sim.delay(d); }

Task<> joiner_failure_parent(Simulation& sim, bool* caught) {
  Joiner join(sim);
  join.spawn(failing_child());
  join.spawn(joiner_child_noop(sim, milliseconds(2)));
  try {
    co_await join.wait();
  } catch (const std::logic_error&) {
    *caught = true;
  }
}

TEST(Joiner, PropagatesChildException) {
  Simulation sim;
  bool caught = false;
  sim.spawn(joiner_failure_parent(sim, &caught));
  sim.run();
  EXPECT_TRUE(caught);
}

TEST(LatencyRecorder, SummarizesSamples) {
  LatencyRecorder rec;
  for (int i = 1; i <= 100; ++i) rec.add(milliseconds(i));
  EXPECT_EQ(rec.count(), 100u);
  EXPECT_EQ(rec.min(), milliseconds(1));
  EXPECT_EQ(rec.max(), milliseconds(100));
  EXPECT_DOUBLE_EQ(rec.mean(), static_cast<double>(milliseconds(50.5)));
  // Nearest-rank: index round(0.5 * 99) = 50 -> the 51 ms sample.
  EXPECT_EQ(rec.percentile(0.5), milliseconds(51));
  EXPECT_EQ(rec.percentile(1.0), milliseconds(100));
}

TEST(Throughput, AggregatesOverSpan) {
  Throughput t;
  t.record(seconds(0.0), seconds(1.0), 5'000'000);
  t.record(seconds(0.5), seconds(2.0), 5'000'000);
  EXPECT_EQ(t.bytes(), 10'000'000u);
  EXPECT_EQ(t.operations(), 2u);
  // 10 MB over [0, 2] s = 5 MB/s.
  EXPECT_DOUBLE_EQ(t.mb_per_s(), 5.0);
}

TEST(Rng, IsDeterministicPerSeed) {
  Rng a(12345), b(12345);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.uniform(0, 1'000'000), b.uniform(0, 1'000'000));
  }
}

TEST(Rng, ForkDiverges) {
  Rng a(1);
  Rng c = a.fork();
  bool any_diff = false;
  Rng b(1);
  Rng d = b.fork();
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(c.uniform(0, 1000), d.uniform(0, 1000));  // forks deterministic
  }
  Rng e(2);
  Rng f = e.fork();
  Rng g(1);
  Rng h = g.fork();
  for (int i = 0; i < 10; ++i) {
    if (f.uniform(0, 1'000'000) != h.uniform(0, 1'000'000)) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

TEST(JsonWriter, EscapesStringsPerRfc8259) {
  JsonWriter w;
  w.add("quote", "a\"b");
  w.add("backslash", "a\\b");
  w.add("controls", std::string("\b\f\n\r\t"));
  w.add("low", std::string("\x01\x1f"));
  const std::string out = w.str();
  EXPECT_NE(out.find("\"a\\\"b\""), std::string::npos);
  EXPECT_NE(out.find("\"a\\\\b\""), std::string::npos);
  EXPECT_NE(out.find("\\b\\f\\n\\r\\t"), std::string::npos);
  EXPECT_NE(out.find("\\u0001\\u001f"), std::string::npos);
  // No raw control bytes survive into the rendered JSON.
  for (char c : out) {
    EXPECT_GE(static_cast<unsigned char>(c), 0x20);
  }
}

TEST(JsonWriter, NonFiniteDoublesRenderAsNull) {
  JsonWriter w;
  w.add("nan", std::nan(""));
  w.add("inf", std::numeric_limits<double>::infinity());
  w.add("ninf", -std::numeric_limits<double>::infinity());
  w.add("ok", 1.5);
  const std::string out = w.str();
  EXPECT_NE(out.find("\"nan\": null"), std::string::npos);
  EXPECT_NE(out.find("\"inf\": null"), std::string::npos);
  EXPECT_NE(out.find("\"ninf\": null"), std::string::npos);
  // The bare tokens `nan`/`inf` (unquoted, non-null) never appear.
  EXPECT_EQ(out.find(": nan"), std::string::npos);
  EXPECT_EQ(out.find(": inf"), std::string::npos);
  EXPECT_EQ(out.find(": -"), std::string::npos);
}

TEST(JsonWriter, AddRawEmbedsVerbatim) {
  JsonWriter w;
  w.add("n", 1);
  w.add_raw("nested", "{\"a\":[1,2]}");
  EXPECT_EQ(w.str(), "{\"n\": 1, \"nested\": {\"a\":[1,2]}}");
}

TEST(TablePrinter, FmtNormalizesNonFinite) {
  EXPECT_EQ(TablePrinter::fmt(std::nan("")), "nan");
  EXPECT_EQ(TablePrinter::fmt(-std::nan("")), "nan");
  EXPECT_EQ(TablePrinter::fmt(std::numeric_limits<double>::infinity()),
            "inf");
  EXPECT_EQ(TablePrinter::fmt(-std::numeric_limits<double>::infinity()),
            "-inf");
  EXPECT_EQ(TablePrinter::fmt(1.2345, 2), "1.23");
}

}  // namespace
}  // namespace raidx::sim
