#include "cdd/cdd.hpp"

#include <cassert>
#include <utility>

namespace raidx::cdd {

CddService::CddService(CddFabric& fabric, int node_id)
    : fabric_(fabric),
      node_(node_id),
      mailbox_(fabric.cluster().sim()),
      locks_(fabric.cluster().sim()) {}

sim::Task<> CddService::server_loop() {
  for (;;) {
    Request req = co_await mailbox_.recv();
    // Each request is handled concurrently; ordering on the actual disk is
    // enforced by the disk's own FIFO queue, as in a real driver.
    fabric_.cluster().sim().spawn(handle(std::move(req)));
  }
}

sim::Task<> CddService::handle(Request req) {
  ++served_;
  auto& cluster = fabric_.cluster();
  auto& node = cluster.node(node_);

  switch (req.op) {
    case Request::Op::kRead: {
      obs::Span serve = obs::trace_span(
          cluster.sim(), req.ctx, "cdd.serve.read", obs::Track::kServer,
          node_, obs::SpanArgs{}.tag("node", node_).tag("disk", req.disk));
      Reply reply;
      co_await node.cpu_work(req.wire_bytes());
      try {
        auto& d = cluster.disk(req.disk);
        // Failed disks and not-yet-rebuilt regions cannot serve reads;
        // the client's controller falls back to its degraded path.
        if (!d.readable(req.offset, req.nblocks)) {
          reply.ok = false;
          if (d.failed()) fabric_.notify_disk_failure(req.disk);
        } else {
          co_await d.io(disk::IoKind::kRead, req.offset, req.nblocks,
                        req.prio, serve.ctx());
          reply.data = d.read_payload(req.offset, req.nblocks);
          IntegrityHooks* integ = fabric_.integrity();
          if (integ != nullptr && (req.verify || integ->verify_reads())) {
            co_await node.compute(integ->checksum_cost(
                static_cast<std::uint64_t>(req.nblocks) *
                d.block_bytes()));
            d.verify_blocks(req.offset, req.nblocks, reply.bad_blocks);
            for (std::uint64_t b : reply.bad_blocks) {
              integ->on_corruption_found(req.disk, b, req.verify);
            }
            if (!reply.bad_blocks.empty() && !req.verify) {
              // An ordinary read must never deliver bytes that failed
              // verification: fail the reply so the client's controller
              // re-fetches through its degraded/redundancy path (and the
              // bad bytes can never be installed in a cache).
              reply.ok = false;
              reply.data = {};
            }
          }
        }
      } catch (const disk::DiskFailedError& e) {
        reply.ok = false;
        fabric_.notify_disk_failure(e.disk_id);
      }
      co_await send_reply(req.from, req.op, req.rpc_id, req.reply,
                          std::move(reply), serve.ctx());
      break;
    }
    case Request::Op::kWrite: {
      obs::Span serve = obs::trace_span(
          cluster.sim(), req.ctx, "cdd.serve.write", obs::Track::kServer,
          node_, obs::SpanArgs{}.tag("node", node_).tag("disk", req.disk));
      Reply reply;
      co_await node.cpu_work(req.wire_bytes());
      try {
        auto& d = cluster.disk(req.disk);
        // With an integrity plane attached, the CDD computes the blocks'
        // checksums before they hit the media (write_data stores them).
        if (IntegrityHooks* integ = fabric_.integrity()) {
          co_await node.compute(integ->checksum_cost(
              static_cast<std::uint64_t>(req.nblocks) *
              d.block_bytes()));
        }
        co_await d.io(disk::IoKind::kWrite, req.offset, req.nblocks,
                      req.prio, serve.ctx());
        d.write_data(req.offset, req.payload);
      } catch (const disk::DiskFailedError& e) {
        reply.ok = false;
        fabric_.notify_disk_failure(e.disk_id);
      }
      co_await send_reply(req.from, req.op, req.rpc_id, req.reply,
                          std::move(reply), serve.ctx());
      break;
    }
    case Request::Op::kLock: {
      obs::Span serve = obs::trace_span(
          cluster.sim(), req.ctx, "cdd.serve.lock", obs::Track::kServer,
          node_,
          obs::SpanArgs{}.tag("node", node_).tag(
              "groups", static_cast<std::int64_t>(req.lock_groups.size())));
      co_await node.cpu_work(req.wire_bytes());
      // Grant the whole record atomically: groups in ascending order, the
      // same order every requester uses.
      for (std::uint64_t g : req.lock_groups) {
        if (!locks_.try_acquire_now(g, req.lock_owner)) {
          co_await locks_.acquire(g, req.lock_owner);
        }
        if (fabric_.params().replicate_lock_table) {
          fabric_.cluster().sim().spawn(
              replicate_lock_state(g, req.lock_owner));
        }
      }
      co_await send_reply(req.from, req.op, req.rpc_id, req.reply, Reply{},
                          serve.ctx());
      break;
    }
    case Request::Op::kUnlock: {
      obs::Span serve = obs::trace_span(
          cluster.sim(), req.ctx, "cdd.serve.unlock", obs::Track::kServer,
          node_,
          obs::SpanArgs{}.tag("node", node_).tag(
              "groups", static_cast<std::int64_t>(req.lock_groups.size())));
      co_await node.cpu_work(req.wire_bytes());
      for (std::uint64_t g : req.lock_groups) {
        locks_.release(g, req.lock_owner);
        if (fabric_.params().replicate_lock_table) {
          fabric_.cluster().sim().spawn(
              replicate_lock_state(g, locks_.owner(g)));
        }
      }
      co_await send_reply(req.from, req.op, req.rpc_id, req.reply, Reply{},
                          serve.ctx());
      break;
    }
    case Request::Op::kLockSync: {
      // One-way replication update; lock_owner 0 means "group is free".
      obs::Span serve = obs::trace_span(
          cluster.sim(), req.ctx, "cdd.serve.locksync", obs::Track::kServer,
          node_, obs::SpanArgs{}.tag("node", node_));
      co_await node.cpu_work(req.wire_bytes());
      locks_.apply_replica_update(req.group, req.lock_owner);
      break;
    }
    case Request::Op::kProbe: {
      // Health query answered from device state: no media access, so a
      // probe never perturbs the disk head or queues behind data traffic.
      obs::Span serve = obs::trace_span(
          cluster.sim(), req.ctx, "cdd.serve.probe", obs::Track::kServer,
          node_, obs::SpanArgs{}.tag("node", node_).tag("disk", req.disk));
      Reply reply;
      co_await node.cpu_work(req.wire_bytes());
      if (req.disk >= 0) reply.ok = !cluster.disk(req.disk).failed();
      co_await send_reply(req.from, req.op, req.rpc_id, req.reply,
                          std::move(reply), serve.ctx());
      break;
    }
  }
}

sim::Task<> CddService::send_reply(int to, Request::Op /*op*/,
                                   std::uint64_t rpc_id,
                                   sim::Oneshot<Reply>* slot, Reply reply,
                                   obs::TraceContext ctx) {
  if (to != node_) {
    auto& cluster = fabric_.cluster();
    co_await cluster.node(node_).cpu_work(reply.wire_bytes());
    const bool delivered = co_await cluster.network().transmit(
        node_, to, reply.wire_bytes(), ctx);
    // Reply lost to a partition: the client's watchdog owns the outcome.
    if (!delivered) co_return;
  }
  if (rpc_id != 0) {
    fabric_.deliver_reply(rpc_id, std::move(reply));
  } else {
    assert(slot != nullptr);
    slot->set(std::move(reply));
  }
}

sim::Task<> CddService::replicate_lock_state(std::uint64_t group,
                                             std::uint64_t owner) {
  auto& cluster = fabric_.cluster();
  // Background one-way traffic gets its own root trace.
  obs::Span span = obs::trace_span(
      cluster.sim(), {}, "cdd.replicate", obs::Track::kRequest, node_,
      obs::SpanArgs{}.tag("node", node_));
  for (int peer = 0; peer < cluster.num_nodes(); ++peer) {
    if (peer == node_) continue;
    Request sync;
    sync.op = Request::Op::kLockSync;
    sync.from = node_;
    sync.group = group;
    sync.lock_owner = owner;
    sync.ctx = span.ctx();
    const bool delivered = co_await cluster.network().transmit(
        node_, peer, sync.wire_bytes(), span.ctx());
    // Replication is best-effort one-way traffic; a partitioned peer just
    // misses the update (its replica is advisory, never authoritative).
    if (delivered) fabric_.service(peer).mailbox().send(std::move(sync));
  }
}

CddFabric::CddFabric(cluster::Cluster& cluster, CddParams params)
    : cluster_(cluster), params_(params), backoff_rng_(params.backoff_seed) {
  services_.reserve(static_cast<std::size_t>(cluster.num_nodes()));
  for (int i = 0; i < cluster.num_nodes(); ++i) {
    services_.push_back(std::make_unique<CddService>(*this, i));
    cluster.sim().spawn(services_.back()->server_loop());
  }
}

sim::Task<Reply> CddFabric::submit(int client, int target_node, Request req) {
  req.from = client;
  const std::uint64_t request_bytes = req.wire_bytes();
  const obs::TraceContext ctx = req.ctx;  // req may be moved away below

  if (target_node == client) {
    ++local_requests_;
    sim::Oneshot<Reply> slot(cluster_.sim());
    req.reply = &slot;
    service(client).mailbox().send(std::move(req));
    co_return co_await slot.wait();
  }

  ++remote_requests_;

  // Only data-path ops are safely retryable: reads and probes are
  // idempotent, and block writes are idempotent at this layer (same
  // payload to the same physical extent).  Lock traffic never times out
  // (see CddParams), so its reply routes through the raw slot pointer.
  const bool can_retry = req.op == Request::Op::kRead ||
                         req.op == Request::Op::kWrite ||
                         req.op == Request::Op::kProbe;
  const sim::Time timeout =
      can_retry ? (req.timeout > 0 ? req.timeout : params_.request_timeout)
                : 0;

  if (timeout <= 0) {
    sim::Oneshot<Reply> slot(cluster_.sim());
    req.reply = &slot;
    co_await cluster_.node(client).cpu_work(request_bytes);
    const bool delivered = co_await cluster_.network().transmit(
        client, target_node, request_bytes, ctx);
    if (delivered) service(target_node).mailbox().send(std::move(req));
    // An undelivered request with no watchdog waits forever -- exactly the
    // seed's semantics; chaos runs must configure request_timeout.
    Reply reply = co_await slot.wait();
    co_await cluster_.node(client).cpu_work(reply.wire_bytes());
    co_return reply;
  }

  const int max_retries =
      req.retries >= 0 ? req.retries : params_.max_retries;
  for (int attempt = 0;; ++attempt) {
    // Fresh slot and fresh rpc id per attempt: a reply to an abandoned
    // attempt finds no map entry and is dropped, never double-delivered.
    sim::Oneshot<Reply> slot(cluster_.sim());
    const std::uint64_t id = ++rpc_seq_;
    pending_.emplace(id, &slot);
    Request wire = req;       // keep `req` for potential retries
    wire.rpc_id = id;
    wire.reply = nullptr;     // timed RPCs route through the pending map
    co_await cluster_.node(client).cpu_work(request_bytes);
    const bool delivered = co_await cluster_.network().transmit(
        client, target_node, request_bytes, ctx);
    if (delivered) service(target_node).mailbox().send(std::move(wire));
    cluster_.sim().schedule(timeout, [this, id] { resolve_timeout(id); });
    Reply reply = co_await slot.wait();
    if (!reply.timed_out) {
      co_await cluster_.node(client).cpu_work(reply.wire_bytes());
      co_return reply;
    }
    ++timeouts_;
    if (attempt >= max_retries) {
      ++retries_exhausted_;
      co_return reply;  // ok = false, timed_out = true
    }
    ++retries_;
    co_await cluster_.sim().delay(backoff_delay(attempt));
  }
}

void CddFabric::resolve_timeout(std::uint64_t rpc_id) {
  auto it = pending_.find(rpc_id);
  if (it == pending_.end()) return;  // real reply won the race
  sim::Oneshot<Reply>* slot = it->second;
  pending_.erase(it);
  Reply reply;
  reply.ok = false;
  reply.timed_out = true;
  slot->set(std::move(reply));
}

bool CddFabric::deliver_reply(std::uint64_t rpc_id, Reply reply) {
  auto it = pending_.find(rpc_id);
  if (it == pending_.end()) {
    // The watchdog already abandoned this attempt; the waiter's slot is
    // gone (possibly destroyed), so the late reply must be dropped.
    ++late_replies_;
    return false;
  }
  sim::Oneshot<Reply>* slot = it->second;
  pending_.erase(it);
  slot->set(std::move(reply));
  return true;
}

sim::Time CddFabric::backoff_delay(int attempt) {
  double d = static_cast<double>(params_.backoff_base);
  for (int i = 0; i < attempt; ++i) d *= params_.backoff_multiplier;
  if (params_.backoff_jitter > 0) {
    d *= 1.0 + backoff_rng_.uniform_real(0.0, params_.backoff_jitter);
  }
  return static_cast<sim::Time>(d);
}

sim::Task<Reply> CddFabric::probe(int client, int node, int disk,
                                  sim::Time timeout, obs::TraceContext ctx) {
  obs::Span span = obs::trace_span(
      cluster_.sim(), ctx, "cdd.probe", obs::Track::kRequest, client,
      obs::SpanArgs{}.tag("client", client).tag("node", node).tag("disk",
                                                                  disk));
  Request req;
  req.op = Request::Op::kProbe;
  req.disk = disk;
  req.timeout = timeout > 0 ? timeout : params_.request_timeout;
  req.retries = 0;  // the prober's cadence is the retry policy
  req.ctx = span.ctx();
  co_return co_await submit(client, node, std::move(req));
}

sim::Task<Reply> CddFabric::read(int client, int disk_id, std::uint64_t offset,
                                 std::uint32_t nblocks,
                                 disk::IoPriority prio,
                                 obs::TraceContext ctx) {
  const int target = cluster_.geometry().node_of(disk_id);
  obs::Span span = obs::trace_span(
      cluster_.sim(), ctx, "cdd.read", obs::Track::kRequest, client,
      obs::SpanArgs{}
          .tag("client", client)
          .tag("disk", disk_id)
          .tag("remote", target != client ? 1 : 0));
  Request req;
  req.op = Request::Op::kRead;
  req.disk = disk_id;
  req.offset = offset;
  req.nblocks = nblocks;
  req.prio = prio;
  req.ctx = span.ctx();
  co_return co_await submit(client, target, std::move(req));
}

sim::Task<Reply> CddFabric::scrub_read(int client, int disk_id,
                                       std::uint64_t offset,
                                       std::uint32_t nblocks,
                                       obs::TraceContext ctx) {
  const int target = cluster_.geometry().node_of(disk_id);
  obs::Span span = obs::trace_span(
      cluster_.sim(), ctx, "cdd.scrub_read", obs::Track::kRequest, client,
      obs::SpanArgs{}
          .tag("client", client)
          .tag("disk", disk_id)
          .tag("remote", target != client ? 1 : 0));
  Request req;
  req.op = Request::Op::kRead;
  req.disk = disk_id;
  req.offset = offset;
  req.nblocks = nblocks;
  req.prio = disk::IoPriority::kBackground;
  req.verify = true;
  req.ctx = span.ctx();
  co_return co_await submit(client, target, std::move(req));
}

sim::Task<Reply> CddFabric::write(int client, int disk_id,
                                  std::uint64_t offset,
                                  block::Payload data,
                                  disk::IoPriority prio,
                                  obs::TraceContext ctx) {
  assert(data.size() % cluster_.geometry().block_bytes == 0);
  const int target = cluster_.geometry().node_of(disk_id);
  obs::Span span = obs::trace_span(
      cluster_.sim(), ctx, "cdd.write", obs::Track::kRequest, client,
      obs::SpanArgs{}
          .tag("client", client)
          .tag("disk", disk_id)
          .tag("remote", target != client ? 1 : 0)
          .tag("background",
               prio == disk::IoPriority::kBackground ? 1 : 0));
  Request req;
  req.op = Request::Op::kWrite;
  req.disk = disk_id;
  req.offset = offset;
  req.nblocks = static_cast<std::uint32_t>(
      data.size() / cluster_.geometry().block_bytes);
  req.payload = std::move(data);
  req.prio = prio;
  req.ctx = span.ctx();
  co_return co_await submit(client, target, std::move(req));
}

sim::Task<> CddFabric::lock_groups(int client,
                                   std::vector<std::uint64_t> groups,
                                   std::uint64_t owner,
                                   obs::TraceContext ctx) {
  obs::Span span = obs::trace_span(
      cluster_.sim(), ctx, "cdd.lock", obs::Track::kRequest, client,
      obs::SpanArgs{}.tag("client", client).tag(
          "groups", static_cast<std::int64_t>(groups.size())));
  // One RPC per home node, homes in ascending order.  Groups are already
  // sorted, so each home's sub-list is ascending too.
  for (int home = 0; home < cluster_.num_nodes(); ++home) {
    Request req;
    req.op = Request::Op::kLock;
    req.lock_owner = owner;
    req.ctx = span.ctx();
    for (std::uint64_t g : groups) {
      if (lock_home(g) == home) req.lock_groups.push_back(g);
    }
    if (req.lock_groups.empty()) continue;
    co_await submit(client, home, std::move(req));
  }
}

sim::Task<> CddFabric::unlock_groups(int client,
                                     std::vector<std::uint64_t> groups,
                                     std::uint64_t owner,
                                     obs::TraceContext ctx) {
  obs::Span span = obs::trace_span(
      cluster_.sim(), ctx, "cdd.unlock", obs::Track::kRequest, client,
      obs::SpanArgs{}.tag("client", client).tag(
          "groups", static_cast<std::int64_t>(groups.size())));
  for (int home = 0; home < cluster_.num_nodes(); ++home) {
    Request req;
    req.op = Request::Op::kUnlock;
    req.lock_owner = owner;
    req.ctx = span.ctx();
    for (std::uint64_t g : groups) {
      if (lock_home(g) == home) req.lock_groups.push_back(g);
    }
    if (req.lock_groups.empty()) continue;
    co_await submit(client, home, std::move(req));
  }
}

}  // namespace raidx::cdd
