#include "disk/disk.hpp"

#include <cassert>
#include <cmath>

namespace raidx::disk {

Disk::Disk(sim::Simulation& sim, DiskParams params, int id, ScsiBus* bus)
    : Device(params.geometry(), id),
      sim_(sim),
      params_(params),
      bus_(bus),
      queue_(sim, /*capacity=*/1, /*priority_levels=*/2) {}

sim::Time Disk::seek_time(std::uint64_t from, std::uint64_t to) const {
  if (from == to) return 0;
  const double dist = static_cast<double>(from > to ? from - to : to - from) /
                      static_cast<double>(params_.total_blocks);
  // Square-root seek curve: short seeks dominated by settle time, long seeks
  // by arm acceleration (Ruemmler & Wilkes style approximation).
  const double span = static_cast<double>(params_.full_stroke_seek -
                                          params_.track_to_track_seek);
  return params_.track_to_track_seek +
         static_cast<sim::Time>(span * std::sqrt(dist));
}

sim::Time Disk::service_time(std::uint64_t block, std::uint32_t nblocks,
                             bool sequential) const {
  sim::Time t = params_.controller_overhead;
  if (!sequential) {
    t += seek_time(head_pos_, block);
    t += params_.avg_rotational_latency();
  }
  t += sim::transfer_time(
      static_cast<std::uint64_t>(nblocks) * params_.block_bytes,
      params_.media_rate_mbs);
  return t;
}

sim::Task<> Disk::io(IoKind kind, std::uint64_t block, std::uint32_t nblocks,
                     IoPriority prio, obs::TraceContext ctx) {
  if (failed_) throw DiskFailedError(id_);
  assert(block + nblocks <= params_.total_blocks);

  // Queue depth at arrival: requests ahead of us plus the one in service.
  depth_rec_.record(
      sim_, obs::Track::kDisk, id_,
      static_cast<std::int64_t>(queue_.queued() + queue_.in_use() + 1));
  obs::Span req = obs::trace_span(
      sim_, ctx, kind == IoKind::kRead ? "disk.read" : "disk.write",
      obs::Track::kRequest, id_,
      obs::SpanArgs{}
          .tag("disk", id_)
          .tag("lba", static_cast<std::int64_t>(block))
          .tag("nblocks", nblocks)
          .tag("background", prio == IoPriority::kBackground ? 1 : 0));

  auto arm = co_await queue_.acquire(static_cast<int>(prio));
  if (failed_) throw DiskFailedError(id_);

  // The service span brackets arm occupancy exactly ([grant, release] of a
  // capacity-1 resource), so per-disk span time sums to busy_time().
  const sim::Time grant = sim_.now();
  obs::Span service = obs::trace_span(
      sim_, req.ctx(), "disk.service", obs::Track::kDisk, id_,
      obs::SpanArgs{}
          .tag("disk", id_)
          .tag("lba", static_cast<std::int64_t>(block))
          .tag("write", kind == IoKind::kWrite ? 1 : 0));

  const bool sequential = (block == head_pos_);
  const sim::Time mech = service_time(block, nblocks, sequential);
  const std::uint64_t bytes =
      static_cast<std::uint64_t>(nblocks) * params_.block_bytes;

  if (kind == IoKind::kRead) {
    // Media first, then ship across the bus.
    co_await sim_.delay(mech);
    head_pos_ = block + nblocks;
    service.close();
    busy_rec_.record(sim_, obs::Track::kDisk, id_, grant, sim_.now());
    arm.release();  // the arm is free while the buffer drains to the bus
    if (bus_) co_await bus_->transfer(bytes, req.ctx());
    ++reads_;
    bytes_read_ += bytes;
  } else {
    // Data arrives over the bus into the disk buffer, then hits the media.
    if (bus_) co_await bus_->transfer(bytes, service.ctx());
    co_await sim_.delay(mech);
    head_pos_ = block + nblocks;
    ++writes_;
    bytes_written_ += bytes;
    service.close();
    busy_rec_.record(sim_, obs::Track::kDisk, id_, grant, sim_.now());
  }
  if (failed_) throw DiskFailedError(id_);
}

void Disk::replace() {
  Device::replace();
  head_pos_ = 0;
}

}  // namespace raidx::disk
