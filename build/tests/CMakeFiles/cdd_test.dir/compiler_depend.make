# Empty compiler generated dependencies file for cdd_test.
# This may be replaced when dependencies are built.
