# Empty compiler generated dependencies file for table3_improvement.
# This may be replaced when dependencies are built.
