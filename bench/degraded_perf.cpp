// Performance under failure: aggregate read bandwidth of each redundant
// architecture when healthy, running degraded (one disk lost), and while a
// background rebuild is sweeping the replacement disk.
//
// This extends the paper's reliability story (Section 6, "can recover from
// any single disk failure") with the question a storage operator actually
// asks: what does service look like *during* the failure and the repair?
// RAID-x degraded reads hit the mirror images (cheap); RAID-5 degraded
// reads reconstruct from all surviving disks (n-1 reads + XOR per lost
// block), so its degraded curve collapses hardest.
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "sim/stats.hpp"
#include "workload/parallel_io.hpp"

namespace {

using namespace raidx;
using bench::World;
using workload::Arch;
using workload::IoOp;
using workload::ParallelIoConfig;

enum class State { kHealthy, kDegraded, kRebuilding };

sim::Task<> run_rebuild(raid::ArrayController* eng, Arch arch, int victim,
                        std::uint64_t sweep) {
  switch (arch) {
    case Arch::kRaid5:
      co_await static_cast<raid::Raid5Controller*>(eng)->rebuild_disk(
          0, victim, sweep);
      break;
    case Arch::kRaid10:
      co_await static_cast<raid::Raid10Controller*>(eng)->rebuild_disk(
          0, victim, sweep);
      break;
    case Arch::kRaidX:
      co_await static_cast<raid::RaidxController*>(eng)->rebuild_disk(
          0, victim, sweep);
      break;
    default:
      break;
  }
}

double measure(Arch arch, State state) {
  World world(bench::perf_trojans(), arch);
  const int victim = 3;
  if (state != State::kHealthy) {
    world.cluster.disk(victim).fail();
  }
  if (state == State::kRebuilding) {
    world.cluster.disk(victim).replace();
    // A bounded sweep keeps the rebuild active throughout the measurement.
    world.sim.spawn(run_rebuild(world.engine.get(), arch, victim, 1500));
  }
  ParallelIoConfig cfg;
  cfg.clients = 8;
  cfg.op = IoOp::kRead;
  cfg.bytes_per_op = 16ull << 20;
  return workload::run_parallel_io(*world.engine, cfg).aggregate_mbs;
}

}  // namespace

int main() {
  std::printf(
      "Read bandwidth under failure (8 clients, 16 MB each; disk D3 is "
      "the casualty)\n\n");
  sim::TablePrinter table({"architecture", "healthy MB/s", "degraded MB/s",
                           "during rebuild MB/s"});
  for (Arch arch : {Arch::kRaidX, Arch::kRaid5, Arch::kRaid10}) {
    table.add_row({workload::arch_name(arch),
                   bench::mbs(measure(arch, State::kHealthy)),
                   bench::mbs(measure(arch, State::kDegraded)),
                   bench::mbs(measure(arch, State::kRebuilding))});
  }
  table.print();
  std::printf(
      "\nReading: RAID-x degrades gentlest -- the lost disk's images are\n"
      "spread over the whole array by the rotating image-node placement.\n"
      "RAID-10's chain concentrates every lost block's copy on ONE\n"
      "neighbor disk (a hotspot), and RAID-5 pays n-1 reconstruction\n"
      "reads per lost block.  'During rebuild' keeps un-rebuilt blocks on\n"
      "the degraded path (rebuild watermark) while the sweep itself runs\n"
      "at background disk priority.\n");
  return 0;
}
