// Synchronization primitives: Barrier, Latch, Trigger.
//
// Barrier reproduces the MPI_Barrier() the paper's clients use to start
// parallel I/O simultaneously.  Latch is a countdown join used for stripe
// fan-out (wait for all per-disk sub-requests).  Trigger is a one-shot
// broadcast condition (e.g. "rebuild complete").
//
// All three park waiters on intrusive lists whose nodes live in the
// awaiter (and therefore in the suspended coroutine's frame), so waiting
// and waking never allocate.  Release walks the list in arrival order, so
// wakeups keep FIFO determinism.
#pragma once

#include <coroutine>
#include <cstddef>

#include "sim/event_queue.hpp"

namespace raidx::sim {

namespace detail {

/// Intrusive FIFO of suspended coroutines; nodes are owned by awaiters.
struct WaitList {
  struct Node {
    std::coroutine_handle<> handle{};
    Node* next = nullptr;
  };

  Node* head = nullptr;
  Node* tail = nullptr;
  std::size_t count = 0;

  void append(Node* n) {
    n->next = nullptr;
    if (tail) {
      tail->next = n;
    } else {
      head = n;
    }
    tail = n;
    ++count;
  }

  /// Detach every node and schedule its resume at the current instant, in
  /// arrival order.  Node memory stays valid: each frame remains suspended
  /// until its scheduled resume fires.
  void release_all(Simulation& sim) {
    Node* n = head;
    head = tail = nullptr;
    count = 0;
    while (n != nullptr) {
      Node* next = n->next;
      sim.schedule_resume(0, n->handle);
      n = next;
    }
  }
};

}  // namespace detail

/// Reusable cyclic barrier for `parties` processes.
class Barrier {
 public:
  Barrier(Simulation& sim, int parties);

  /// Awaitable: suspends until all parties have arrived in this generation.
  auto arrive_and_wait() {
    struct Awaiter {
      Barrier* b;
      detail::WaitList::Node node;
      bool await_ready() const noexcept { return b->parties_ <= 1; }
      bool await_suspend(std::coroutine_handle<> h) {
        node.handle = h;
        return b->arrive(&node);
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{this, {}};
  }

  int parties() const { return parties_; }
  int arrived() const { return arrived_; }

 private:
  // Returns false (do not suspend) for the last arriver.
  bool arrive(detail::WaitList::Node* n);

  Simulation& sim_;
  int parties_;
  int arrived_ = 0;
  detail::WaitList waiting_;
};

/// Countdown latch: wait() resumes once the count reaches zero.
class Latch {
 public:
  Latch(Simulation& sim, int count);

  void count_down(int n = 1);
  /// Raise the count (register more outstanding work before waiting).
  void add(int n = 1) { count_ += n; }

  auto wait() {
    struct Awaiter {
      Latch* l;
      detail::WaitList::Node node;
      bool await_ready() const noexcept { return l->count_ <= 0; }
      void await_suspend(std::coroutine_handle<> h) {
        node.handle = h;
        l->waiting_.append(&node);
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{this, {}};
  }

  int count() const { return count_; }

 private:
  Simulation& sim_;
  int count_;
  detail::WaitList waiting_;
};

/// One-shot broadcast event.
class Trigger {
 public:
  explicit Trigger(Simulation& sim);

  void set();
  bool is_set() const { return set_; }

  auto wait() {
    struct Awaiter {
      Trigger* t;
      detail::WaitList::Node node;
      bool await_ready() const noexcept { return t->set_; }
      void await_suspend(std::coroutine_handle<> h) {
        node.handle = h;
        t->waiting_.append(&node);
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{this, {}};
  }

 private:
  Simulation& sim_;
  bool set_ = false;
  detail::WaitList waiting_;
};

}  // namespace raidx::sim
