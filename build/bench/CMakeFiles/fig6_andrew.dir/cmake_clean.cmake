file(REMOVE_RECURSE
  "CMakeFiles/fig6_andrew.dir/fig6_andrew.cpp.o"
  "CMakeFiles/fig6_andrew.dir/fig6_andrew.cpp.o.d"
  "fig6_andrew"
  "fig6_andrew.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_andrew.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
