#include "raid/raid5.hpp"

#include <cassert>

namespace raidx::raid {

int Raid5Layout::parity_disk(std::uint64_t stripe) const {
  const auto total = static_cast<std::uint64_t>(geo_.total_disks());
  // Right-symmetric rotation: parity walks backwards one disk per stripe.
  return static_cast<int>((total - 1 - (stripe % total)) % total);
}

block::PhysBlock Raid5Layout::parity_location(std::uint64_t stripe) const {
  return block::PhysBlock{parity_disk(stripe), stripe};
}

block::PhysBlock Raid5Layout::data_location(std::uint64_t lba) const {
  assert(lba < logical_blocks());
  const std::uint64_t stripe = stripe_of(lba);
  const int pos = static_cast<int>(lba % stripe_width());
  const int pdisk = parity_disk(stripe);
  // Data fills the stripe left to right, skipping the parity disk.
  const int disk = pos < pdisk ? pos : pos + 1;
  return block::PhysBlock{disk, stripe};
}

}  // namespace raidx::raid
