// Google-benchmark micro benchmarks of the simulator substrate itself:
// event-queue throughput, coroutine scheduling, resource contention, and
// layout address arithmetic.  These bound how big a cluster experiment the
// harness can run per wall-clock second.
#include <benchmark/benchmark.h>

#include <cstdint>
#include <cstdlib>
#include <functional>
#include <vector>

#include "block/sios.hpp"
#include "raid/raid0.hpp"
#include "raid/raid10.hpp"
#include "raid/raid5.hpp"
#include "raid/raidx.hpp"
#include "sim/event_queue.hpp"
#include "sim/resource.hpp"
#include "sim/shard.hpp"
#include "sim/task.hpp"
#include "sim/time.hpp"

namespace {

using namespace raidx;

void BM_EventQueueScheduleDispatch(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulation sim;
    int sink = 0;
    for (int i = 0; i < 1024; ++i) {
      sim.schedule(i, [&sink] { ++sink; });
    }
    sim.run();
    benchmark::DoNotOptimize(sink);
  }
  state.SetItemsProcessed(state.iterations() * 1024);
}
BENCHMARK(BM_EventQueueScheduleDispatch);

sim::Task<> hop(sim::Simulation& sim, int hops) {
  for (int i = 0; i < hops; ++i) co_await sim.delay(1);
}

void BM_CoroutineDelayHops(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulation sim;
    sim.spawn(hop(sim, 1024));
    sim.run();
  }
  state.SetItemsProcessed(state.iterations() * 1024);
}
BENCHMARK(BM_CoroutineDelayHops);

sim::Task<> contender(sim::Simulation& sim, sim::Resource& r, int rounds) {
  for (int i = 0; i < rounds; ++i) {
    auto g = co_await r.acquire();
    co_await sim.delay(1);
  }
}

void BM_ResourceContention(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulation sim;
    sim::Resource r(sim, 1);
    for (int c = 0; c < 8; ++c) sim.spawn(contender(sim, r, 64));
    sim.run();
  }
  state.SetItemsProcessed(state.iterations() * 8 * 64);
}
BENCHMARK(BM_ResourceContention);

// Timers beyond the wheel's 2^48 ns prefix window detour through the
// overflow heap and migrate back in when the clock reaches their window.
void BM_FarFutureInsert(benchmark::State& state) {
  constexpr std::int64_t kHorizon = std::int64_t{1} << 48;
  for (auto _ : state) {
    sim::Simulation sim;
    int sink = 0;
    for (int i = 0; i < 1024; ++i) {
      sim.schedule(kHorizon + (std::int64_t{1} << (i % 20)),
                   [&sink] { ++sink; });
    }
    sim.run();
    benchmark::DoNotOptimize(sink);
  }
  state.SetItemsProcessed(state.iterations() * 1024);
}
BENCHMARK(BM_FarFutureInsert);

// Every event lands on one timestamp: a single level-0 slot absorbs the
// whole burst and must drain it in exact insertion order.
void BM_EqualTimestampBurst(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulation sim;
    int sink = 0;
    for (int i = 0; i < 1024; ++i) {
      sim.schedule(1000, [&sink] { ++sink; });
    }
    sim.run();
    benchmark::DoNotOptimize(sink);
  }
  state.SetItemsProcessed(state.iterations() * 1024);
}
BENCHMARK(BM_EqualTimestampBurst);

// Deep wait lists: 64 processes pile onto one resource, so every release
// pops a waiter and every acquire parks one (intrusive list churn).
void BM_WaiterChurn(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulation sim;
    sim::Resource r(sim, 1);
    for (int c = 0; c < 64; ++c) sim.spawn(contender(sim, r, 16));
    sim.run();
  }
  state.SetItemsProcessed(state.iterations() * 64 * 16);
}
BENCHMARK(BM_WaiterChurn);

sim::Task<> shard_load(sim::Simulation& s, int events) {
  for (int i = 0; i < events; ++i) co_await s.delay(100);
}

// Windowed multi-shard dispatch: 4 shards x 1024 events at a 100 ns
// cadence under a 10 us lookahead (~100 events per shard per window), so
// the row prices window setup + census + parallel drain, not just the
// per-event dispatch the single-queue rows above already cover.  Arg is
// the worker count; Arg(1) isolates the synchronizer overhead itself.
void BM_ShardedDispatch(benchmark::State& state) {
  const int threads = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::ShardGroup group(4, sim::microseconds(10));
    for (int s = 0; s < 4; ++s) {
      auto scope = group.frame_scope(s);
      group.sim(s).spawn(shard_load(group.sim(s), 1024));
    }
    group.run(threads);
  }
  state.SetItemsProcessed(state.iterations() * 4 * 1024);
}
BENCHMARK(BM_ShardedDispatch)->Arg(1)->Arg(2)->Arg(4);

// Cross-shard mailbox round trips: one message in flight ping-ponging
// between two shards, every hop paying a full window (census, barrier,
// mailbox merge, delivery).  This is the per-hop latency floor a remote
// I/O pays on top of the simulated network time.
void BM_CrossShardHop(benchmark::State& state) {
  constexpr int kHops = 1024;
  const sim::Time lookahead = sim::microseconds(1);
  for (auto _ : state) {
    sim::ShardGroup group(2, lookahead);
    int hops = 0;
    std::function<void(int)> bounce = [&](int self) {
      if (++hops >= kHops) return;
      const int peer = 1 - self;
      group.post(self, peer, group.sim(self).now() + lookahead,
                 [&bounce, peer] { bounce(peer); });
    };
    {
      auto scope = group.frame_scope(0);
      group.sim(0).schedule_at(0, [&bounce] { bounce(0); });
    }
    group.run(2);
    benchmark::DoNotOptimize(hops);
  }
  state.SetItemsProcessed(state.iterations() * kHops);
}
BENCHMARK(BM_CrossShardHop);

block::ArrayGeometry bench_geo() {
  block::ArrayGeometry g;
  g.nodes = 16;
  g.disks_per_node = 1;
  g.blocks_per_disk = 327'680;
  return g;
}

void BM_Raid0Mapping(benchmark::State& state) {
  raid::Raid0Layout layout(bench_geo());
  std::uint64_t lba = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(layout.data_location(lba));
    lba = (lba + 97) % layout.logical_blocks();
  }
}
BENCHMARK(BM_Raid0Mapping);

void BM_Raid5MappingWithParity(benchmark::State& state) {
  raid::Raid5Layout layout(bench_geo());
  std::uint64_t lba = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(layout.data_location(lba));
    benchmark::DoNotOptimize(layout.parity_location(layout.stripe_of(lba)));
    lba = (lba + 97) % layout.logical_blocks();
  }
}
BENCHMARK(BM_Raid5MappingWithParity);

void BM_RaidxMappingWithImage(benchmark::State& state) {
  raid::RaidxLayout layout(bench_geo());
  std::uint64_t lba = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(layout.data_location(lba));
    benchmark::DoNotOptimize(layout.mirror_locations(lba));
    lba = (lba + 97) % layout.logical_blocks();
  }
}
BENCHMARK(BM_RaidxMappingWithImage);

void BM_RaidxStripeImages(benchmark::State& state) {
  raid::RaidxLayout layout(bench_geo());
  std::uint64_t stripe = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(layout.stripe_images(stripe));
    stripe = (stripe + 13) % (layout.logical_blocks() / 16);
  }
}
BENCHMARK(BM_RaidxStripeImages);

}  // namespace

// Like BENCHMARK_MAIN(), but under RAIDX_BENCH_SMOKE each benchmark runs
// for a fraction of the default wall time: CI only needs to prove the
// paths execute, not to produce stable throughput numbers.
int main(int argc, char** argv) {
  std::vector<char*> args(argv, argv + argc);
  char smoke_flag[] = "--benchmark_min_time=0.01";
  if (std::getenv("RAIDX_BENCH_SMOKE") != nullptr) {
    args.push_back(smoke_flag);
  }
  int args_count = static_cast<int>(args.size());
  benchmark::Initialize(&args_count, args.data());
  if (benchmark::ReportUnrecognizedArguments(args_count, args.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
