# Empty compiler generated dependencies file for checkpoint_restore.
# This may be replaced when dependencies are built.
