// Rebuild engines: restore a replaced disk's contents from redundancy.
//
// Rebuilds run at background disk priority so foreground traffic keeps its
// latency while redundancy is being re-established.  Each level's sweep
// follows its own geometry:
//  * RAID-5: every physical offset of the lost disk (data or parity alike)
//    is the XOR of the other N-1 disks' blocks at the same offset.
//  * RAID-10: primary zone re-copied from the chained mirror, mirror zone
//    re-copied from the chained-from neighbor's primaries.
//  * RAID-x: data zone restored from images, clustered and neighbor image
//    zones regenerated from the surviving data blocks.
#include <algorithm>

#include "raid/controller.hpp"

namespace raidx::raid {

namespace {

// Marks the target disk as rebuilding for the duration of the sweep; the
// watermark rises as rows complete, so reads of not-yet-restored regions
// keep falling back to the degraded path.  RAII: the rebuilding flag
// clears even if the sweep throws (e.g. a second failure).
class RebuildScope {
 public:
  explicit RebuildScope(disk::Disk& d) : disk_(d) { disk_.begin_rebuild(); }
  ~RebuildScope() { disk_.finish_rebuild(); }
  RebuildScope(const RebuildScope&) = delete;
  RebuildScope& operator=(const RebuildScope&) = delete;
  void advance(std::uint64_t watermark) { disk_.advance_rebuild(watermark); }

 private:
  disk::Disk& disk_;
};
}  // namespace

sim::Task<> Raid5Controller::rebuild_disk(int client, int disk_id,
                                          std::uint64_t max_offset) {
  obs::Span span = obs::trace_span(
      sim(), {}, "engine.rebuild", obs::Track::kRequest, client,
      obs::SpanArgs{}.tag("client", client).tag("disk", disk_id));
  const auto& geo = fabric_.cluster().geometry();
  const std::uint32_t bs = block_bytes();
  const std::uint64_t limit = std::min(max_offset, geo.blocks_per_disk);
  const int total = geo.total_disks();
  RebuildScope scope(fabric_.cluster().disk(disk_id));

  for (std::uint64_t off = 0; off < limit; ++off) {
    scope.advance(off);
    // The missing block (data or parity) is the XOR of its stripe peers.
    std::vector<cdd::Reply> peers;
    peers.reserve(static_cast<std::size_t>(total - 1));
    bool all_zero = true;
    for (int d = 0; d < total; ++d) {
      if (d == disk_id) continue;
      cdd::Reply r = co_await fabric_.read(client, d, off, 1,
                                           disk::IoPriority::kBackground, span.ctx());
      if (!r.ok) {
        throw IoError("RAID-5 rebuild: second failure on disk " +
                      std::to_string(d));
      }
      if (!r.data.is_zeros()) all_zero = false;
      peers.push_back(std::move(r));
    }
    block::Payload rebuilt;
    if (all_zero) {
      rebuilt = block::Payload::zeros(bs);
    } else {
      std::vector<std::byte> acc(bs, std::byte{0});
      for (const cdd::Reply& r : peers) block::xor_into(acc, r.data);
      rebuilt = block::Payload(std::move(acc));
    }
    co_await xor_cpu(client, static_cast<std::uint64_t>(total - 1) * bs);
    cdd::Reply w = co_await fabric_.write(client, disk_id, off,
                                          std::move(rebuilt),
                                          disk::IoPriority::kBackground, span.ctx());
    if (!w.ok) {
      throw IoError("RAID-5 rebuild: replacement disk failed");
    }
  }
}

sim::Task<> Raid10Controller::rebuild_disk(int client, int disk_id,
                                           std::uint64_t max_offset) {
  obs::Span span = obs::trace_span(
      sim(), {}, "engine.rebuild", obs::Track::kRequest, client,
      obs::SpanArgs{}.tag("client", client).tag("disk", disk_id));
  const auto& geo = fabric_.cluster().geometry();
  const auto& lay = static_cast<const Raid10Layout&>(layout());
  const int n = geo.nodes;
  const int node = geo.node_of(disk_id);
  const int row = geo.row_of(disk_id);
  const std::uint64_t limit = std::min(max_offset, lay.mirror_zone_base());
  const auto nk = static_cast<std::uint64_t>(n);
  RebuildScope scope(fabric_.cluster().disk(disk_id));

  for (std::uint64_t off = 0; off < limit; ++off) {
    scope.advance(off);
    const std::uint64_t stripe =
        off * static_cast<std::uint64_t>(geo.disks_per_node) +
        static_cast<std::uint64_t>(row);
    // Primary zone: block `lba` lived here; its copy is on the next node.
    const std::uint64_t lba = stripe * nk + static_cast<std::uint64_t>(node);
    if (lba < logical_blocks()) {
      const int mirror_disk = geo.disk_id(row, (node + 1) % n);
      cdd::Reply r =
          co_await fabric_.read(client, mirror_disk,
                                lay.mirror_zone_base() + off, 1,
                                disk::IoPriority::kBackground, span.ctx());
      if (!r.ok) throw IoError("RAID-10 rebuild: mirror copy unavailable");
      co_await fabric_.write(client, disk_id, off, std::move(r.data),
                             disk::IoPriority::kBackground, span.ctx());
    }
    // Mirror zone: this disk backs the previous node's primaries.
    const std::uint64_t backed_lba =
        stripe * nk + static_cast<std::uint64_t>((node + n - 1) % n);
    if (backed_lba < logical_blocks()) {
      const int primary_disk = geo.disk_id(row, (node + n - 1) % n);
      cdd::Reply r = co_await fabric_.read(client, primary_disk, off, 1,
                                           disk::IoPriority::kBackground, span.ctx());
      if (!r.ok) throw IoError("RAID-10 rebuild: primary copy unavailable");
      co_await fabric_.write(client, disk_id, lay.mirror_zone_base() + off,
                             std::move(r.data),
                             disk::IoPriority::kBackground, span.ctx());
    }
  }
}

sim::Task<> Raid1Controller::rebuild_disk(int client, int disk_id,
                                          std::uint64_t max_offset) {
  obs::Span span = obs::trace_span(
      sim(), {}, "engine.rebuild", obs::Track::kRequest, client,
      obs::SpanArgs{}.tag("client", client).tag("disk", disk_id));
  const auto& geo = fabric_.cluster().geometry();
  // Both disks of a pair use the same offsets over the whole disk.
  const std::uint64_t limit = std::min(max_offset, geo.blocks_per_disk);
  const int partner = (disk_id % 2 == 0) ? disk_id + 1 : disk_id - 1;
  RebuildScope scope(fabric_.cluster().disk(disk_id));

  for (std::uint64_t off = 0; off < limit; ++off) {
    scope.advance(off);
    cdd::Reply r = co_await fabric_.read(client, partner, off, 1,
                                         disk::IoPriority::kBackground, span.ctx());
    if (!r.ok) throw IoError("RAID-1 rebuild: partner copy unavailable");
    co_await fabric_.write(client, disk_id, off, std::move(r.data),
                           disk::IoPriority::kBackground, span.ctx());
  }
}

sim::Task<> RaidxController::rebuild_disk(int client, int disk_id,
                                          std::uint64_t max_offset) {
  obs::Span span = obs::trace_span(
      sim(), {}, "engine.rebuild", obs::Track::kRequest, client,
      obs::SpanArgs{}.tag("client", client).tag("disk", disk_id));
  const auto& geo = fabric_.cluster().geometry();
  const std::uint32_t bs = block_bytes();
  const int n = geo.nodes;
  const int node = geo.node_of(disk_id);
  const int row = geo.row_of(disk_id);
  const std::uint64_t limit =
      std::min(max_offset, layout_.data_zone_blocks());
  const auto nk = static_cast<std::uint64_t>(n);
  RebuildScope scope(fabric_.cluster().disk(disk_id));

  for (std::uint64_t q = 0; q < limit; ++q) {
    scope.advance(q);
    const std::uint64_t stripe =
        q * static_cast<std::uint64_t>(geo.disks_per_node) +
        static_cast<std::uint64_t>(row);

    // Data zone: restore this disk's data block from its image.
    const std::uint64_t lba = stripe * nk + static_cast<std::uint64_t>(node);
    {
      const block::PhysBlock img = layout_.mirror_locations(lba)[0];
      cdd::Reply r = co_await fabric_.read(client, img.disk, img.offset, 1,
                                           disk::IoPriority::kBackground, span.ctx());
      if (!r.ok) throw IoError("RAID-x rebuild: image unavailable");
      co_await fabric_.write(client, disk_id, q, std::move(r.data),
                             disk::IoPriority::kBackground, span.ctx());
    }

    // Clustered zone: if this disk clusters stripe `stripe`'s images,
    // regenerate the run from the surviving data blocks.
    if (layout_.image_node(stripe) == node) {
      const RaidxLayout::StripeImages imgs = layout_.stripe_images(stripe);
      std::vector<cdd::Reply> blocks;
      blocks.reserve(imgs.clustered.nblocks);
      bool all_zero = true;
      for (std::uint32_t i = 0; i < imgs.clustered.nblocks; ++i) {
        const block::PhysBlock src =
            layout_.data_location(imgs.clustered_lbas[i]);
        cdd::Reply r = co_await fabric_.read(client, src.disk, src.offset, 1,
                                             disk::IoPriority::kBackground, span.ctx());
        if (!r.ok) throw IoError("RAID-x rebuild: data block unavailable");
        if (!r.data.is_zeros()) all_zero = false;
        blocks.push_back(std::move(r));
      }
      block::Payload run;
      if (all_zero) {
        run = block::Payload::zeros(
            static_cast<std::size_t>(imgs.clustered.nblocks) * bs);
      } else {
        std::vector<std::byte> buf(
            static_cast<std::size_t>(imgs.clustered.nblocks) * bs);
        for (std::uint32_t i = 0; i < imgs.clustered.nblocks; ++i) {
          blocks[i].data.copy_to(
              std::span<std::byte>(buf).subspan(
                  static_cast<std::size_t>(i) * bs, bs));
        }
        run = block::Payload(std::move(buf));
      }
      co_await fabric_.write(client, imgs.clustered.disk,
                             imgs.clustered.offset, std::move(run),
                             disk::IoPriority::kBackground, span.ctx());
    }

    // Neighbor zone: if this disk holds the stray image of stripe `stripe`.
    if ((layout_.image_node(stripe) + 1) % n == node) {
      const RaidxLayout::StripeImages imgs = layout_.stripe_images(stripe);
      const block::PhysBlock src = layout_.data_location(imgs.neighbor_lba);
      cdd::Reply r = co_await fabric_.read(client, src.disk, src.offset, 1,
                                           disk::IoPriority::kBackground, span.ctx());
      if (!r.ok) throw IoError("RAID-x rebuild: data block unavailable");
      co_await fabric_.write(client, imgs.neighbor.disk, imgs.neighbor.offset,
                             std::move(r.data),
                             disk::IoPriority::kBackground, span.ctx());
    }
  }
}

}  // namespace raidx::raid
