#include "workload/engines.hpp"

namespace raidx::workload {

const char* arch_name(Arch a) {
  switch (a) {
    case Arch::kRaid0: return "RAID-0";
    case Arch::kRaid1: return "RAID-1";
    case Arch::kRaid5: return "RAID-5";
    case Arch::kRaid10: return "RAID-10";
    case Arch::kRaidX: return "RAID-x";
    case Arch::kNfs: return "NFS";
  }
  return "?";
}

std::vector<Arch> paper_architectures() {
  return {Arch::kRaidX, Arch::kRaid5, Arch::kRaid10, Arch::kNfs};
}

std::unique_ptr<raid::ArrayController> make_engine(Arch arch,
                                                   cdd::CddFabric& fabric,
                                                   raid::EngineParams params,
                                                   nfs::NfsParams nfs_params) {
  switch (arch) {
    case Arch::kRaid0:
      return std::make_unique<raid::Raid0Controller>(fabric, params);
    case Arch::kRaid1:
      return std::make_unique<raid::Raid1Controller>(fabric, params);
    case Arch::kRaid5:
      return std::make_unique<raid::Raid5Controller>(fabric, params);
    case Arch::kRaid10:
      return std::make_unique<raid::Raid10Controller>(fabric, params);
    case Arch::kRaidX:
      return std::make_unique<raid::RaidxController>(fabric, params);
    case Arch::kNfs:
      return std::make_unique<nfs::NfsEngine>(fabric, params, nfs_params);
  }
  return nullptr;
}

}  // namespace raidx::workload
