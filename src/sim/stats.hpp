// Measurement helpers: latency distributions and throughput accounting.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/time.hpp"

namespace raidx::sim {

/// Collects a sample of latencies and summarizes them.
class LatencyRecorder {
 public:
  void add(Time t);

  std::size_t count() const { return samples_.size(); }
  Time min() const;
  Time max() const;
  double mean() const;
  /// q in [0,1]; nearest-rank percentile.
  Time percentile(double q) const;
  /// q in [0,1]; linearly interpolated between order statistics.  Smoother
  /// than percentile() for small samples; summaries report this form (see
  /// DESIGN.md "Quantile conventions").
  Time quantile(double q) const;
  Time total() const { return total_; }

  void clear();

 private:
  mutable std::vector<Time> samples_;
  mutable bool sorted_ = false;
  Time total_ = 0;
};

/// Accumulates bytes moved between first_at/last_done marks; reports MB/s.
class Throughput {
 public:
  void record(Time start, Time end, std::uint64_t bytes);

  std::uint64_t bytes() const { return bytes_; }
  Time first_start() const { return first_start_; }
  Time last_end() const { return last_end_; }
  /// Aggregate bandwidth over the span [first_start, last_end].
  double mb_per_s() const;
  std::size_t operations() const { return ops_; }

  void clear();

 private:
  std::uint64_t bytes_ = 0;
  std::size_t ops_ = 0;
  Time first_start_ = -1;
  Time last_end_ = -1;
};

/// Minimal insertion-ordered JSON object builder for the machine-readable
/// bench artifacts (BENCH_*.json).  Flat objects only -- keys to scalars --
/// which is all a trajectory diff needs.
class JsonWriter {
 public:
  void add(const std::string& key, std::uint64_t v);
  void add(const std::string& key, std::int64_t v);
  void add(const std::string& key, int v) {
    add(key, static_cast<std::int64_t>(v));
  }
  void add(const std::string& key, double v);
  void add(const std::string& key, const std::string& v);
  void add(const std::string& key, const char* v) {
    add(key, std::string(v));
  }
  void add(const std::string& key, bool v);
  /// Embed a pre-rendered JSON value (object/array) verbatim.  Lets the
  /// flat bench schema carry nested sections like the obs registry
  /// snapshot without growing this writer into a full JSON library.
  void add_raw(const std::string& key, std::string json);

  /// Render as a JSON object, keys in insertion order.
  std::string str() const;

 private:
  std::vector<std::pair<std::string, std::string>> fields_;
};

/// Fixed-width table printer used by the benchmark harnesses so every
/// figure/table reproduction prints in a uniform, diff-friendly format.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers);
  void add_row(std::vector<std::string> cells);
  /// Render to stdout.
  void print() const;

  static std::string fmt(double v, int precision = 2);

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace raidx::sim
