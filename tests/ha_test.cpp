// Recovery-orchestration tests: token-bucket rate limiting, CDD request
// timeouts/retries/backoff, probe RPCs, the failure-detection ->
// hot-spare failover -> throttled auto-rebuild lifecycle, heartbeat
// node-down declaration, and the deterministic chaos FaultPlan.
#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>
#include <vector>

#include "cache/cache_fabric.hpp"
#include "ha/fault_plan.hpp"
#include "ha/ha.hpp"
#include "raid/controller.hpp"
#include "sim/token_bucket.hpp"
#include "test_util.hpp"

namespace raidx {
namespace {

using test::pattern_block;
using test::pattern_run;
using test::Rig;

// ----------------------------------------------------------- TokenBucket --

TEST(TokenBucket, SaturatedAcquiresEmitAtTheConfiguredRate) {
  sim::Simulation s;
  sim::TokenBucket tb(s, /*tokens_per_second=*/1000.0, /*burst=*/100.0);
  std::vector<sim::Time> at;
  auto task = [](sim::Simulation* s, sim::TokenBucket* tb,
                 std::vector<sim::Time>* at) -> sim::Task<> {
    for (int i = 0; i < 3; ++i) {
      co_await tb->acquire(100);
      at->push_back(s->now());
    }
  };
  s.spawn(task(&s, &tb, &at));
  s.run();

  // Bucket starts full: the first grant is free, then each 100-token
  // acquire must wait out 100ms of refill (+1ns of integer rounding).
  ASSERT_EQ(at.size(), 3u);
  EXPECT_EQ(at[0], 0);
  EXPECT_GE(at[1], sim::milliseconds(100));
  EXPECT_LE(at[1], sim::milliseconds(100) + 10);
  EXPECT_GE(at[2], sim::milliseconds(200));
  EXPECT_LE(at[2], sim::milliseconds(200) + 10);
  EXPECT_EQ(tb.granted_tokens(), 300u);
  EXPECT_EQ(tb.grants(), 3u);
  EXPECT_GE(tb.throttled_ns(), sim::milliseconds(200));
}

TEST(TokenBucket, OversizeRequestsDrainTheBucketButStillComplete) {
  sim::Simulation s;
  sim::TokenBucket tb(s, 1000.0, /*burst=*/100.0);
  std::vector<sim::Time> at;
  auto task = [](sim::Simulation* s, sim::TokenBucket* tb,
                 std::vector<sim::Time>* at) -> sim::Task<> {
    co_await tb->acquire(250);  // larger than the burst
    at->push_back(s->now());
    co_await tb->acquire(100);
    at->push_back(s->now());
  };
  s.spawn(task(&s, &tb, &at));
  s.run();

  // The oversize acquire waits only for a full bucket (which it had), is
  // granted whole, and leaves the bucket empty -- the long-run rate holds
  // because the next acquire pays the full refill.
  ASSERT_EQ(at.size(), 2u);
  EXPECT_EQ(at[0], 0);
  EXPECT_GE(at[1], sim::milliseconds(100));
  EXPECT_EQ(tb.granted_tokens(), 350u);
}

TEST(TokenBucket, IdenticalRunsAreBitIdentical) {
  auto run_once = [] {
    sim::Simulation s;
    sim::TokenBucket tb(s, 12'345.0, 1'000.0);
    auto task = [](sim::TokenBucket* tb) -> sim::Task<> {
      for (int i = 0; i < 20; ++i) co_await tb->acquire(700);
    };
    s.spawn(task(&tb));
    s.run();
    return std::pair{s.now(), tb.throttled_ns()};
  };
  EXPECT_EQ(run_once(), run_once());
}

// ------------------------------------------------- CDD timeouts & backoff --

cdd::CddParams timeout_params(sim::Time timeout, int retries) {
  cdd::CddParams p;
  p.request_timeout = timeout;
  p.max_retries = retries;
  return p;
}

TEST(CddBackoff, ScheduleIsSeededDeterministicAndMonotone) {
  Rig a(test::small_cluster(), timeout_params(sim::milliseconds(2), 3));
  Rig b(test::small_cluster(), timeout_params(sim::milliseconds(2), 3));
  sim::Time prev = 0;
  for (int attempt = 0; attempt < 5; ++attempt) {
    const sim::Time da = a.fabric.backoff_delay(attempt);
    const sim::Time db = b.fabric.backoff_delay(attempt);
    // Same seed, same draw order -> identical jittered schedule.
    EXPECT_EQ(da, db) << "attempt " << attempt;
    // base * 2^attempt with <= 25% jitter never overlaps the next step.
    EXPECT_GE(da, sim::milliseconds(1) << attempt);
    EXPECT_GT(da, prev);
    prev = da;
  }
}

TEST(CddTimeout, ExhaustsRetriesAgainstAPartitionedNode) {
  Rig rig(test::small_cluster(),
          timeout_params(sim::milliseconds(2), /*retries=*/2));
  rig.cluster.network().set_node_up(1, false);  // disk 1 lives on node 1

  cdd::Reply got;
  auto task = [](Rig* r, cdd::Reply* out) -> sim::Task<> {
    *out = co_await r->fabric.read(0, /*disk=*/1, 0, 1);
  };
  rig.run(task(&rig, &got));

  EXPECT_TRUE(got.timed_out);
  EXPECT_FALSE(got.ok);
  EXPECT_EQ(rig.fabric.timeouts(), 3u);  // initial attempt + 2 retries
  EXPECT_EQ(rig.fabric.retries(), 2u);
  EXPECT_EQ(rig.fabric.retries_exhausted(), 1u);
  EXPECT_EQ(rig.fabric.late_replies(), 0u);  // nothing ever got through
  // Three timeout windows plus two backoff gaps must have elapsed.
  EXPECT_GE(rig.sim.now(), 3 * sim::milliseconds(2));
}

TEST(CddTimeout, LateRepliesAreDroppedNeverDeliveredTwice) {
  // A timeout far below the real round trip: every attempt is abandoned
  // by the watchdog first, and every server reply arrives late.  The
  // pending-RPC map must drop them instead of resolving a dead slot.
  Rig rig(test::small_cluster(),
          timeout_params(sim::microseconds(20), /*retries=*/1));

  cdd::Reply got;
  auto task = [](Rig* r, cdd::Reply* out) -> sim::Task<> {
    *out = co_await r->fabric.read(0, /*disk=*/1, 0, 1);
  };
  rig.run(task(&rig, &got));  // run() drains the straggling replies too

  EXPECT_TRUE(got.timed_out);
  EXPECT_EQ(rig.fabric.timeouts(), 2u);
  EXPECT_EQ(rig.fabric.retries_exhausted(), 1u);
  EXPECT_EQ(rig.fabric.late_replies(), 2u);  // both attempts answered late
}

TEST(CddTimeout, RetriesRecoverOnceThePartitionHeals) {
  // The timeout must exceed the real service time (a remote single-block
  // read is dominated by the disk seek) or every delivered attempt would
  // be abandoned before its reply lands.  20ms is comfortably above it.
  Rig rig(test::small_cluster(),
          timeout_params(sim::milliseconds(20), /*retries=*/8));
  const auto want = pattern_block(0, 512, /*salt=*/4);

  auto write = [](Rig* r, std::vector<std::byte> data) -> sim::Task<> {
    co_await r->fabric.write(0, /*disk=*/1, 0,
                             block::Payload::own(std::move(data)));
  };
  rig.run(write(&rig, want));

  rig.cluster.network().set_node_up(1, false);
  rig.sim.schedule(sim::milliseconds(10), [&rig] {
    rig.cluster.network().set_node_up(1, true);
  });
  cdd::Reply got;
  auto read = [](Rig* r, cdd::Reply* out) -> sim::Task<> {
    *out = co_await r->fabric.read(0, /*disk=*/1, 0, 1);
  };
  rig.run(read(&rig, &got));

  EXPECT_FALSE(got.timed_out);
  EXPECT_TRUE(got.ok);
  EXPECT_EQ(got.data.to_vector(), want);
  EXPECT_GT(rig.fabric.retries(), 0u);
  EXPECT_EQ(rig.fabric.retries_exhausted(), 0u);
  EXPECT_EQ(rig.fabric.late_replies(), 0u);
}

TEST(CddProbe, ReportsNodeLivenessAndDiskHealthWithoutRetrying) {
  Rig rig(test::small_cluster());  // fabric default timeout stays 0

  std::vector<cdd::Reply> got(3);
  auto probes = [](Rig* r, std::vector<cdd::Reply>* out) -> sim::Task<> {
    (*out)[0] = co_await r->fabric.probe(0, 1, -1, sim::milliseconds(2));
    r->cluster.disk(1).fail();
    (*out)[1] = co_await r->fabric.probe(0, 1, 1, sim::milliseconds(2));
    r->cluster.network().set_node_up(1, false);
    (*out)[2] = co_await r->fabric.probe(0, 1, -1, sim::milliseconds(2));
  };
  rig.run(probes(&rig, &got));

  EXPECT_TRUE(got[0].ok);
  EXPECT_FALSE(got[0].timed_out);
  EXPECT_FALSE(got[1].ok);  // node answered: the disk is dead
  EXPECT_FALSE(got[1].timed_out);
  EXPECT_TRUE(got[2].timed_out);  // node unreachable: silence
  // Probes are never retried -- the prober's cadence is the retry policy.
  EXPECT_EQ(rig.fabric.retries(), 0u);
}

// ----------------------------------------------------------- Orchestrator --

sim::Task<> write_all(raid::ArrayController* eng, std::uint64_t lba,
                      std::uint32_t nblocks, std::uint8_t salt = 0) {
  const auto data = pattern_run(lba, nblocks, eng->block_bytes(), salt);
  co_await eng->write(0, lba, data);
}

sim::Task<> read_all(raid::ArrayController* eng, std::uint64_t lba,
                     std::uint32_t nblocks, std::vector<std::byte>* got,
                     int client = 1) {
  got->assign(static_cast<std::size_t>(nblocks) * eng->block_bytes(),
              std::byte{0});
  co_await eng->read(client, lba, nblocks, *got);
}

ha::HaParams fast_ha(double rebuild_mbs = 0.0) {
  ha::HaParams hp;
  hp.probe_interval = sim::milliseconds(5);
  hp.probe_timeout = sim::milliseconds(2);
  hp.spare_swap_time = sim::milliseconds(10);
  hp.rebuild_mbs = rebuild_mbs;
  return hp;
}

TEST(Orchestrator, TrafficSourcedDetectionFailsOverAndRebuilds) {
  Rig rig(test::small_cluster(4, 1, /*blocks_per_disk=*/200));
  raid::RaidxController eng(rig.fabric);
  rig.run(write_all(&eng, 0, 64, /*salt=*/5));

  // Park the prober so only traffic can possibly make the detection: the
  // first probe round would otherwise beat a windowed read to the later
  // extents of the stripe.
  ha::HaParams hp = fast_ha();
  hp.probe_interval = sim::seconds(10);
  ha::Orchestrator orch(eng, hp);
  rig.cluster.disk(2).fail();  // silent failure; no note_fault_injected

  // The very read that survives the failure is also the detection event:
  // the CDD that hit the dead disk reports it, and the orchestrator takes
  // over from there.
  std::vector<std::byte> got;
  rig.run(read_all(&eng, 0, 64, &got));
  EXPECT_EQ(got, pattern_run(0, 64, eng.block_bytes(), 5));

  EXPECT_EQ(orch.recoveries_in_flight(), 0);
  EXPECT_EQ(orch.disk_state(2), ha::DiskState::kHealthy);
  EXPECT_FALSE(rig.cluster.disk(2).failed());
  EXPECT_FALSE(rig.cluster.disk(2).rebuilding());
  const ha::HaStats& s = orch.stats();
  EXPECT_EQ(s.detections, 1u);
  EXPECT_EQ(s.detections_by_traffic, 1u);
  EXPECT_EQ(s.failovers, 1u);
  EXPECT_EQ(s.rebuilds_completed, 1u);
  ASSERT_EQ(s.mttr_ns.size(), 1u);
  EXPECT_GE(s.mttr_ns[0], sim::milliseconds(10));  // at least the swap

  // The failure consumed node 2's rack spare; servicing the dead drive
  // restocks it.
  EXPECT_EQ(orch.spares().available(2), 0);
  orch.note_disk_serviced(2);
  EXPECT_EQ(orch.spares().available(2), 1);

  std::vector<std::byte> again;
  rig.run(read_all(&eng, 0, 64, &again, 3));
  EXPECT_EQ(again, pattern_run(0, 64, eng.block_bytes(), 5));
}

TEST(Orchestrator, ProbesDetectASilentFailureInAQuietCluster) {
  Rig rig(test::small_cluster(4, 1, 200));
  raid::Raid5Controller eng(rig.fabric);
  rig.run(write_all(&eng, 0, 48, /*salt=*/6));

  ha::Orchestrator orch(eng, fast_ha());
  rig.cluster.disk(1).fail();
  orch.note_fault_injected(1);  // chaos hook: no traffic will find this
  rig.sim.run();                // attention loop probes until detection

  const ha::HaStats& s = orch.stats();
  EXPECT_EQ(s.detections, 1u);
  EXPECT_EQ(s.detections_by_probe, 1u);
  EXPECT_EQ(s.detections_by_traffic, 0u);
  ASSERT_EQ(s.detection_ns.size(), 1u);
  EXPECT_GT(s.detection_ns[0], 0);
  EXPECT_EQ(s.failovers, 1u);
  EXPECT_EQ(s.rebuilds_completed, 1u);
  ASSERT_EQ(s.mttr_ns.size(), 1u);
  EXPECT_GT(s.mttr_ns[0], s.detection_ns[0]);
  EXPECT_EQ(orch.disk_state(1), ha::DiskState::kHealthy);

  std::vector<std::byte> got;
  rig.run(read_all(&eng, 0, 48, &got));
  EXPECT_EQ(got, pattern_run(0, 48, eng.block_bytes(), 6));
}

TEST(Orchestrator, SpareExhaustionDegradesUntilTheSlotIsServiced) {
  Rig rig(test::small_cluster(4, 1, 200));
  raid::RaidxController eng(rig.fabric);
  rig.run(write_all(&eng, 0, 64, /*salt=*/7));

  ha::HaParams hp = fast_ha();
  hp.spares_per_node = 0;
  hp.global_spares = 0;
  ha::Orchestrator orch(eng, hp);
  rig.cluster.disk(2).fail();
  orch.note_fault_injected(2);
  rig.sim.run();

  // Nothing to fail over to: the slot parks degraded and the array keeps
  // serving through its redundancy path.
  EXPECT_EQ(orch.disk_state(2), ha::DiskState::kDegraded);
  EXPECT_EQ(orch.stats().spare_exhausted, 1u);
  EXPECT_EQ(orch.stats().failovers, 0u);
  std::vector<std::byte> degraded;
  rig.run(read_all(&eng, 0, 64, &degraded));
  EXPECT_EQ(degraded, pattern_run(0, 64, eng.block_bytes(), 7));

  // The operator shows up with a fresh drive: it is wired in directly and
  // rebuilt, no pool spare needed.
  orch.note_disk_serviced(2);
  rig.sim.run();
  EXPECT_EQ(orch.disk_state(2), ha::DiskState::kHealthy);
  EXPECT_EQ(orch.stats().failovers, 1u);
  EXPECT_EQ(orch.stats().rebuilds_completed, 1u);
  EXPECT_EQ(orch.spares().total_available(), 0);

  std::vector<std::byte> got;
  rig.run(read_all(&eng, 0, 64, &got, 3));
  EXPECT_EQ(got, pattern_run(0, 64, eng.block_bytes(), 7));
}

TEST(Orchestrator, RebuildThrottleSlowsRecoveryAndMetersEveryByte) {
  auto mttr_with = [](double rebuild_mbs, std::uint64_t* bytes,
                      std::uint64_t* granted) {
    Rig rig(test::small_cluster(4, 1, 200));
    raid::RaidxController eng(rig.fabric);
    auto setup = [](raid::ArrayController* e) -> sim::Task<> {
      co_await write_all(e, 0, 64, 9);
    };
    rig.run(setup(&eng));
    ha::Orchestrator orch(eng, fast_ha(rebuild_mbs));
    rig.cluster.disk(1).fail();
    orch.note_fault_injected(1);
    rig.sim.run();
    EXPECT_EQ(orch.stats().rebuilds_completed, 1u);
    *bytes = eng.rebuild_bytes_written();
    *granted =
        orch.throttle() != nullptr ? orch.throttle()->granted_tokens() : 0;
    return orch.stats().mttr_ns.at(0);
  };

  // The natural sweep rate is seek- and lock-RPC-dominated (tens of KB/s),
  // so the cap must sit far below it to actually bite: 2KB/s.
  constexpr double kCapMbs = 0.002;
  std::uint64_t free_bytes = 0, free_granted = 0;
  std::uint64_t capped_bytes = 0, capped_granted = 0;
  const sim::Time unthrottled = mttr_with(0.0, &free_bytes, &free_granted);
  const sim::Time throttled =
      mttr_with(kCapMbs, &capped_bytes, &capped_granted);

  // The cap sits far below the natural rate, so recovery must get much
  // slower -- an exact bytes/rate bound does not hold because oversize
  // acquires (multi-block image runs) are clamped to the burst but granted
  // whole.
  EXPECT_GT(throttled, 2 * unthrottled);
  EXPECT_EQ(free_granted, 0u);          // no bucket when uncapped
  EXPECT_EQ(capped_bytes, free_bytes);  // same sweep, same bytes
  EXPECT_EQ(capped_granted, capped_bytes);  // every byte went through it
}

TEST(Orchestrator, ManualModeWiresTheSpareButLeavesTheSweepToTheCaller) {
  Rig rig(test::small_cluster(4, 1, 200));
  raid::RaidxController eng(rig.fabric);
  rig.run(write_all(&eng, 0, 64, /*salt=*/2));

  ha::HaParams hp = fast_ha();
  hp.auto_rebuild = false;
  ha::Orchestrator orch(eng, hp);
  rig.cluster.disk(2).fail();
  orch.note_fault_injected(2);
  rig.sim.run();

  // Failover happened, but the spare is a blank still marked rebuilding at
  // watermark 0: reads fall back to the degraded path instead of serving
  // the blank's zeros.
  EXPECT_EQ(orch.disk_state(2), ha::DiskState::kRebuilding);
  EXPECT_TRUE(rig.cluster.disk(2).rebuilding());
  EXPECT_EQ(orch.stats().rebuilds_completed, 0u);
  std::vector<std::byte> got;
  rig.run(read_all(&eng, 0, 64, &got));
  EXPECT_EQ(got, pattern_run(0, 64, eng.block_bytes(), 2));

  auto sweep = [](raid::ArrayController* e) -> sim::Task<> {
    co_await e->rebuild_disk(0, 2);
  };
  rig.run(sweep(&eng));
  EXPECT_FALSE(rig.cluster.disk(2).rebuilding());
  rig.run(read_all(&eng, 0, 64, &got, 3));
  EXPECT_EQ(got, pattern_run(0, 64, eng.block_bytes(), 2));
}

TEST(Orchestrator, HeartbeatMissesDeclareANodeDownAndScrubItsCache) {
  Rig rig(test::small_cluster());
  cache::CacheParams cp;
  cp.capacity_blocks = 64;
  cp.cooperative = true;
  cache::CacheFabric cache(rig.cluster, cp);
  raid::Raid0Controller eng(rig.fabric);
  eng.attach_cache(&cache);
  rig.run(write_all(&eng, 0, 8, /*salt=*/3));

  // Warm node 2's cache so the scrub has something to drop.
  std::vector<std::byte> warm;
  rig.run(read_all(&eng, 0, 8, &warm, /*client=*/2));
  ASSERT_TRUE(cache.cache(2).contains(0));

  ha::HaParams hp = fast_ha();
  hp.heartbeat_misses = 3;
  ha::Orchestrator orch(eng, hp);
  rig.cluster.network().set_node_up(2, false);
  orch.note_node_partitioned(2);
  rig.sim.run();  // attention loop probes until the declaration

  EXPECT_TRUE(orch.node_down(2));
  EXPECT_EQ(orch.stats().nodes_declared_down, 1u);
  EXPECT_FALSE(cache.cache(2).contains(0));  // directory + contents scrubbed

  // The partition heals: the next probe rounds notice and lift the
  // declaration.  (A foreground delay keeps the daemon watch loop ticking.)
  rig.cluster.network().set_node_up(2, true);
  orch.note_node_joined(2);
  auto idle = [](Rig* r) -> sim::Task<> {
    co_await r->sim.delay(sim::milliseconds(50));
  };
  rig.run(idle(&rig));
  EXPECT_FALSE(orch.node_down(2));
  EXPECT_EQ(orch.stats().nodes_recovered, 1u);
}

TEST(Orchestrator, PartitionHealedBeforeDetectionReleasesTheMonitor) {
  Rig rig(test::small_cluster());
  raid::Raid0Controller eng(rig.fabric);
  ha::HaParams hp = fast_ha();
  hp.heartbeat_misses = 50;  // far more rounds than the blip lasts
  ha::Orchestrator orch(eng, hp);

  rig.cluster.network().set_node_up(1, false);
  orch.note_node_partitioned(1);
  rig.sim.schedule(sim::milliseconds(8), [&] {
    rig.cluster.network().set_node_up(1, true);
    orch.note_node_joined(1);
  });
  // Without the joined-note releasing the undetected count this would spin
  // forever; run() returning at all is the assertion.
  rig.sim.run();
  EXPECT_FALSE(orch.node_down(1));
  EXPECT_EQ(orch.stats().nodes_declared_down, 0u);
}

// -------------------------------------------------------------- FaultPlan --

TEST(FaultPlan, ParsesEverySpecVerbAndDescribesThem) {
  const ha::FaultPlan plan = ha::FaultPlan::parse(
      "fail:disk=3@2s;heal:disk=3@8s;part:node=1@150ms;join:node=1@4s",
      /*total_disks=*/4);
  ASSERT_EQ(plan.events().size(), 4u);
  EXPECT_EQ(plan.events()[0].kind, ha::FaultEvent::Kind::kFailDisk);
  EXPECT_EQ(plan.events()[0].target, 3);
  EXPECT_EQ(plan.events()[0].at, sim::seconds(2));
  EXPECT_EQ(plan.events()[1].kind, ha::FaultEvent::Kind::kHealDisk);
  EXPECT_EQ(plan.events()[2].kind, ha::FaultEvent::Kind::kPartitionNode);
  EXPECT_EQ(plan.events()[2].at, sim::milliseconds(150));
  EXPECT_EQ(plan.events()[3].kind, ha::FaultEvent::Kind::kJoinNode);

  const std::string text = plan.describe();
  EXPECT_NE(text.find("fail disk 3 @ 2.000s"), std::string::npos);
  EXPECT_NE(text.find("part node 1 @ 0.150s"), std::string::npos);
}

TEST(FaultPlan, RejectsMalformedSpecs) {
  const auto bad = [](const std::string& spec) {
    EXPECT_THROW(ha::FaultPlan::parse(spec, 4), std::invalid_argument)
        << spec;
  };
  bad("fail:disk=9@2s");       // disk out of range
  bad("melt:disk=1@1s");       // unknown verb
  bad("fail:disk=1");          // missing @time
  bad("fail:disk=1@2weeks");   // unknown unit
  bad("fail:disk@2s");         // missing =N
  bad("rand:seed=1,bogus=2");  // unknown rand key
}

TEST(FaultPlan, RandomPlansAreSeedDeterministicAndBounded) {
  const sim::Time window = sim::seconds(10);
  const ha::FaultPlan a =
      ha::FaultPlan::random_plan(42, /*targets=*/8, /*faults=*/4, window,
                                 /*heal_after=*/sim::seconds(1));
  const ha::FaultPlan b =
      ha::FaultPlan::random_plan(42, 8, 4, window, sim::seconds(1));
  ASSERT_EQ(a.events().size(), b.events().size());
  ASSERT_EQ(a.events().size(), 8u);  // 4 failures, each with its heal
  for (std::size_t i = 0; i < a.events().size(); ++i) {
    EXPECT_EQ(a.events()[i].kind, b.events()[i].kind);
    EXPECT_EQ(a.events()[i].target, b.events()[i].target);
    EXPECT_EQ(a.events()[i].at, b.events()[i].at);
  }
  for (std::size_t i = 0; i < a.events().size(); i += 2) {
    const ha::FaultEvent& fail = a.events()[i];
    const ha::FaultEvent& heal = a.events()[i + 1];
    EXPECT_EQ(fail.kind, ha::FaultEvent::Kind::kFailDisk);
    EXPECT_GE(fail.at, window / 10);  // warm-up tenth stays quiet
    EXPECT_LE(fail.at, window);
    EXPECT_GE(fail.target, 0);
    EXPECT_LT(fail.target, 8);
    EXPECT_EQ(heal.kind, ha::FaultEvent::Kind::kHealDisk);
    EXPECT_EQ(heal.target, fail.target);
    EXPECT_EQ(heal.at, fail.at + sim::seconds(1));
  }

  const ha::FaultPlan c =
      ha::FaultPlan::random_plan(43, 8, 4, window, sim::seconds(1));
  bool differs = c.events().size() != a.events().size();
  for (std::size_t i = 0; !differs && i < a.events().size(); ++i) {
    differs = c.events()[i].at != a.events()[i].at ||
              c.events()[i].target != a.events()[i].target;
  }
  EXPECT_TRUE(differs) << "different seeds produced the same plan";
}

TEST(FaultPlan, ArmedPlanDrivesTheFullFailoverLifecycle) {
  Rig rig(test::small_cluster(4, 1, 200));
  raid::RaidxController eng(rig.fabric);
  rig.run(write_all(&eng, 0, 64, /*salt=*/8));

  ha::Orchestrator orch(eng, fast_ha());
  ha::FaultPlan plan = ha::FaultPlan::parse("fail:disk=2@5ms", 4);
  plan.arm(rig.cluster, &orch);
  rig.sim.run();

  EXPECT_EQ(orch.disk_state(2), ha::DiskState::kHealthy);
  EXPECT_EQ(orch.stats().detections, 1u);
  EXPECT_EQ(orch.stats().rebuilds_completed, 1u);
  ASSERT_EQ(orch.stats().detection_ns.size(), 1u);
  ASSERT_EQ(orch.stats().mttr_ns.size(), 1u);

  std::vector<std::byte> got;
  rig.run(read_all(&eng, 0, 64, &got));
  EXPECT_EQ(got, pattern_run(0, 64, eng.block_bytes(), 8));
}

}  // namespace
}  // namespace raidx
