// Asynchronous cross-site mirror replication: OSM's background-update
// idea one level up.
//
// Inside one site, RAID-x writes data blocks in the foreground and
// flushes mirror images in the background.  The federation repeats the
// trick across sites: a client write commits at its home site and
// returns; a per-(src, dst) replication stream then ships the block over
// the WAN and applies it into the destination's mirror region for the
// home site.  The geo-mirror trails its primary the way an OSM image
// trails its data block -- except the window is the WAN backlog, so it is
// *accounted*, not assumed away:
//
//  * every applied entry records its lag (apply time - append time) in a
//    histogram, plus the running max and the count of entries whose lag
//    exceeded the configured staleness bound;
//  * every stream tracks its backlog (entries waiting) and the peak, and
//    timestamps each drain -- the partition-recovery metric is simply
//    (last drain) - (heal instant).
//
// Log mechanics: streams coalesce same-LBA appends (only the newest bytes
// ever cross the WAN -- the shipper reads the block from the home site's
// array at ship time, so a hot block costs one shipment per drain, not
// one per write).  Catch-up bandwidth rides the existing token-bucket
// machinery (`ship_mbs`); a partitioned stream parks on the link's heal
// trigger instead of polling, and a failed shipment re-queues at the
// front so apply order at the destination stays append order.
//
// Determinism: appends are synchronous bookkeeping on the writer's
// coroutine, shippers are ordinary simulation coroutines, and an idle
// stream holds no pending event -- so the simulation still terminates
// when foreground work drains, and two same-seed runs ship identical
// streams.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <unordered_map>
#include <vector>

#include "obs/metrics.hpp"
#include "sim/sync.hpp"
#include "sim/task.hpp"
#include "sim/time.hpp"
#include "sim/token_bucket.hpp"

namespace raidx::wan {

class Federation;

struct ReplicationParams {
  /// Catch-up throttle per stream, MB/s (tokens are bytes; 0 = uncapped).
  /// Bounds how hard a post-partition catch-up can hit the WAN and the
  /// destination's disks -- the cross-site analogue of --rebuild-mbs.
  double ship_mbs = 0.0;
  /// Blocks batched into one WAN shipment.
  std::uint64_t batch_blocks = 64;
  /// Lag past this is a staleness violation (accounted, never enforced).
  sim::Time staleness_bound = sim::seconds(2);
};

/// Counters for one ordered (src -> dst) replication stream.
struct StreamStats {
  std::uint64_t appended = 0;      // log entries accepted
  std::uint64_t coalesced = 0;     // appends folded into a queued entry
  std::uint64_t shipped = 0;       // entries applied at the destination
  std::uint64_t failed_ships = 0;  // shipments lost to a partition
  std::uint64_t bytes_shipped = 0;
  std::uint64_t backlog = 0;       // entries currently waiting
  std::uint64_t peak_backlog = 0;
  sim::Time last_drain = 0;   // instant the backlog last returned to zero
  sim::Time max_lag = 0;      // worst apply-time staleness seen
  std::uint64_t staleness_violations = 0;
};

class Replicator {
 public:
  Replicator(Federation& fed, ReplicationParams params);
  ~Replicator();
  Replicator(const Replicator&) = delete;
  Replicator& operator=(const Replicator&) = delete;

  /// Spawn one shipper coroutine per ordered site pair.  Call once,
  /// before traffic starts.
  void start();

  /// A client write of [lba, lba+nblocks) committed at `site`'s primary
  /// region: queue it for every peer.  Synchronous bookkeeping only.
  void note_write(int site, std::uint64_t lba, std::uint32_t nblocks);

  const ReplicationParams& params() const { return params_; }
  const StreamStats& stream(int src, int dst) const {
    return streams_[index(src, dst)].stats;
  }
  /// Apply-time staleness of every shipped entry, ns.
  const obs::Histogram& lag() const { return lag_; }
  std::uint64_t total_backlog() const;
  std::uint64_t peak_backlog() const;
  sim::Time max_lag() const;
  std::uint64_t staleness_violations() const;
  /// Latest drain instant over every stream: with all links healed this
  /// is when the federation's mirrors last converged.
  sim::Time last_converged() const;

 private:
  struct Entry {
    std::uint64_t lba = 0;
    std::uint32_t nblocks = 0;
    sim::Time appended = 0;
  };
  struct Stream {
    std::deque<Entry> queue;
    /// Queued LBA -> position-independent coalescing handle (the widest
    /// nblocks seen while queued).
    std::unordered_map<std::uint64_t, std::uint32_t> queued;
    StreamStats stats;
    /// Armed while the queue is empty; appends set it.
    std::unique_ptr<sim::Trigger> work;
    std::unique_ptr<sim::TokenBucket> throttle;
  };

  std::size_t index(int src, int dst) const {
    return static_cast<std::size_t>(src) * static_cast<std::size_t>(sites_) +
           static_cast<std::size_t>(dst);
  }
  sim::Task<> shipper(int src, int dst);

  Federation& fed_;
  ReplicationParams params_;
  int sites_;
  std::vector<Stream> streams_;
  obs::Histogram lag_;
  bool started_ = false;
};

}  // namespace raidx::wan
