#include "raid/raidx.hpp"

#include <cassert>

namespace raidx::raid {

RaidxLayout::RaidxLayout(block::ArrayGeometry geo, bool hybrid)
    : Layout(geo),
      // Hybrid drops the data zone from the image disks, so each HDD needs
      // only n image slots per stripe-row q instead of n+1 mixed slots.
      q_max_(geo.blocks_per_disk /
             static_cast<std::uint64_t>(geo.nodes + (hybrid ? 0 : 1))),
      hybrid_(hybrid) {
  assert(q_max_ > 0);
  assert(!hybrid_ || geo_.disks_per_node % 2 == 0);
}

block::PhysBlock RaidxLayout::data_location(std::uint64_t lba) const {
  assert(lba < logical_blocks());
  const auto n = static_cast<std::uint64_t>(geo_.nodes);
  const auto k = static_cast<std::uint64_t>(data_rows());
  const std::uint64_t stripe = lba / n;
  const int slot = static_cast<int>(lba % n);
  const int row = static_cast<int>(stripe % k);
  const std::uint64_t q = stripe / k;
  assert(q < q_max_);
  return block::PhysBlock{geo_.disk_id(row, slot), q};
}

int RaidxLayout::image_node(std::uint64_t stripe) const {
  const auto n = static_cast<std::uint64_t>(geo_.nodes);
  return static_cast<int>(n - 1 - (stripe % n));
}

RaidxLayout::StripeImages RaidxLayout::stripe_images(
    std::uint64_t stripe) const {
  const int n = geo_.nodes;
  const int k = data_rows();
  const int row = static_cast<int>(stripe % static_cast<std::uint64_t>(k));
  const std::uint64_t q = stripe / static_cast<std::uint64_t>(k);
  const int d = image_node(stripe);

  StripeImages out;
  out.clustered.disk = geo_.disk_id(image_row(row), d);
  out.clustered.offset =
      clustered_zone_base() + q * static_cast<std::uint64_t>(n - 1);
  out.clustered.nblocks = static_cast<std::uint32_t>(n - 1);
  out.clustered_lbas.reserve(static_cast<std::size_t>(n - 1));
  for (int j = 0; j < n; ++j) {
    if (j == d) continue;
    out.clustered_lbas.push_back(stripe_first_lba(stripe) +
                                 static_cast<std::uint64_t>(j));
  }
  out.neighbor_lba = stripe_first_lba(stripe) + static_cast<std::uint64_t>(d);
  out.neighbor = block::PhysBlock{geo_.disk_id(image_row(row), (d + 1) % n),
                                  neighbor_zone_base() + q};
  return out;
}

std::vector<block::PhysBlock> RaidxLayout::mirror_locations(
    std::uint64_t lba) const {
  const std::uint64_t stripe = stripe_of(lba);
  const int slot = static_cast<int>(lba % static_cast<std::uint64_t>(geo_.nodes));
  const StripeImages imgs = stripe_images(stripe);
  if (imgs.neighbor_lba == lba) {
    return {imgs.neighbor};
  }
  const int d = image_node(stripe);
  // Index within the clustered run: slots ascend skipping the image node.
  const std::uint64_t idx =
      static_cast<std::uint64_t>(slot < d ? slot : slot - 1);
  return {block::PhysBlock{imgs.clustered.disk, imgs.clustered.offset + idx}};
}

}  // namespace raidx::raid
