#include "disk/scsi_bus.hpp"

namespace raidx::disk {

ScsiBus::ScsiBus(sim::Simulation& sim, BusParams params, int id)
    : sim_(sim), params_(params), id_(id), bus_(sim, /*capacity=*/1) {}

sim::Task<> ScsiBus::transfer(std::uint64_t bytes, obs::TraceContext ctx) {
  auto guard = co_await bus_.acquire();
  const sim::Time grant = sim_.now();
  obs::Span xfer = obs::trace_span(
      sim_, ctx, "bus.transfer", obs::Track::kBus, id_,
      obs::SpanArgs{}.tag("bytes", static_cast<std::int64_t>(bytes)));
  co_await sim_.delay(params_.arbitration +
                      sim::transfer_time(bytes, params_.rate_mbs));
  xfer.close();
  busy_rec_.record(sim_, obs::Track::kBus, id_, grant, sim_.now());
}

}  // namespace raidx::disk
