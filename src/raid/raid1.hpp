// RAID-1: mirrored disk pairs, striped RAID-0 style across the pairs.
//
// The paper's conclusion lists RAID-1 among the configurations to add in
// the next phase of the Trojans project; it completes the comparison
// space here.  Disks 2p and 2p+1 form pair p; logical blocks stripe over
// the pairs and each block's mirror sits on the partner disk at the SAME
// offset -- so unlike chained declustering there is no long seek between
// a disk's data zone and its mirror zone, but each pair's two disks are
// exact copies and the array loses data iff both disks of one pair fail.
#pragma once

#include "raid/layout.hpp"

namespace raidx::raid {

class Raid1Layout : public Layout {
 public:
  explicit Raid1Layout(block::ArrayGeometry geo);

  std::string name() const override { return "RAID-1"; }

  std::uint64_t logical_blocks() const override {
    return geo_.total_blocks() / 2;
  }

  block::PhysBlock data_location(std::uint64_t lba) const override;
  std::vector<block::PhysBlock> mirror_locations(
      std::uint64_t lba) const override;

  /// Stripe width in blocks = number of pairs.
  std::uint32_t stripe_width() const override {
    return static_cast<std::uint32_t>(geo_.total_disks() / 2);
  }

  int pairs() const { return geo_.total_disks() / 2; }
};

}  // namespace raidx::raid
