# Empty compiler generated dependencies file for fig6_andrew.
# This may be replaced when dependencies are built.
