// Unit tests for the disk model: mechanical timing, sequential detection,
// priority scheduling, byte store, and fault injection.
#include <gtest/gtest.h>

#include "disk/disk.hpp"
#include "sim/event_queue.hpp"

namespace raidx::disk {
namespace {

DiskParams tiny_params() {
  DiskParams p;
  p.block_bytes = 4096;
  p.total_blocks = 100'000;
  return p;
}

TEST(DiskModel, SequentialAccessSkipsSeekAndRotation) {
  sim::Simulation sim;
  Disk d(sim, tiny_params(), 0);
  const sim::Time sequential = d.service_time(0, 1, /*sequential=*/true);
  const sim::Time random = d.service_time(50'000, 1, /*sequential=*/false);
  EXPECT_LT(sequential, random);
  // Sequential = controller overhead + media transfer only.
  const sim::Time expected =
      tiny_params().controller_overhead +
      sim::transfer_time(4096, tiny_params().media_rate_mbs);
  EXPECT_EQ(sequential, expected);
}

TEST(DiskModel, SeekTimeGrowsWithDistance) {
  sim::Simulation sim;
  Disk d(sim, tiny_params(), 0);
  const sim::Time near = d.service_time(1'000, 1, false);
  const sim::Time mid = d.service_time(25'000, 1, false);
  const sim::Time far = d.service_time(99'000, 1, false);
  EXPECT_LT(near, mid);
  EXPECT_LT(mid, far);
}

TEST(DiskModel, LargerTransfersTakeLonger) {
  sim::Simulation sim;
  Disk d(sim, tiny_params(), 0);
  const sim::Time one = d.service_time(0, 1, true);
  const sim::Time eight = d.service_time(0, 8, true);
  // 8 blocks move 8x the data but pay the fixed overhead once.
  EXPECT_GT(eight, one);
  EXPECT_LT(eight, 8 * one);
}

sim::Task<> do_io(Disk& d, IoKind kind, std::uint64_t block,
                  std::uint32_t nblocks, IoPriority prio,
                  std::vector<std::pair<int, sim::Time>>* done, int id,
                  sim::Simulation& sim) {
  co_await d.io(kind, block, nblocks, prio);
  if (done) done->emplace_back(id, sim.now());
}

TEST(DiskModel, BackToBackSequentialIsFasterThanScattered) {
  sim::Simulation sim1;
  Disk seq(sim1, tiny_params(), 0);
  for (int i = 0; i < 8; ++i) {
    sim1.spawn(do_io(seq, IoKind::kRead,
                     static_cast<std::uint64_t>(i), 1,
                     IoPriority::kForeground, nullptr, i, sim1));
  }
  sim1.run();

  sim::Simulation sim2;
  Disk scat(sim2, tiny_params(), 0);
  for (int i = 0; i < 8; ++i) {
    sim2.spawn(do_io(scat, IoKind::kRead,
                     static_cast<std::uint64_t>(i) * 12'000, 1,
                     IoPriority::kForeground, nullptr, i, sim2));
  }
  sim2.run();
  EXPECT_LT(sim1.now(), sim2.now() / 2);
}

TEST(DiskModel, ForegroundOvertakesQueuedBackground) {
  sim::Simulation sim;
  Disk d(sim, tiny_params(), 0);
  std::vector<std::pair<int, sim::Time>> done;
  // One op occupies the arm; then one background and one foreground queue.
  sim.spawn(do_io(d, IoKind::kRead, 0, 1, IoPriority::kForeground, &done, 0,
                  sim));
  sim.spawn(do_io(d, IoKind::kRead, 10'000, 1, IoPriority::kBackground,
                  &done, 1, sim));
  sim.spawn(do_io(d, IoKind::kRead, 20'000, 1, IoPriority::kForeground,
                  &done, 2, sim));
  sim.run();
  ASSERT_EQ(done.size(), 3u);
  EXPECT_EQ(done[0].first, 0);
  EXPECT_EQ(done[1].first, 2);  // foreground overtook
  EXPECT_EQ(done[2].first, 1);
}

TEST(DiskModel, StoresAndReturnsBytes) {
  sim::Simulation sim;
  Disk d(sim, tiny_params(), 0);
  std::vector<std::byte> data(4096 * 2);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<std::byte>(i * 37);
  }
  d.write_data(10, data);
  EXPECT_EQ(d.read_data(10, 2), data);
}

TEST(DiskModel, UnwrittenBlocksReadZero) {
  sim::Simulation sim;
  Disk d(sim, tiny_params(), 0);
  auto out = d.read_data(42, 1);
  for (std::byte b : out) EXPECT_EQ(b, std::byte{0});
}

TEST(DiskModel, StoreDataOffDiscardsWrites) {
  sim::Simulation sim;
  auto p = tiny_params();
  p.store_data = false;
  Disk d(sim, p, 0);
  std::vector<std::byte> data(4096, std::byte{0xff});
  d.write_data(5, data);
  for (std::byte b : d.read_data(5, 1)) EXPECT_EQ(b, std::byte{0});
}

TEST(DiskModel, FailedDiskThrows) {
  sim::Simulation sim;
  Disk d(sim, tiny_params(), 7);
  d.fail();
  bool threw = false;
  auto probe = [](Disk& disk, bool* out) -> sim::Task<> {
    try {
      co_await disk.io(IoKind::kRead, 0, 1);
    } catch (const DiskFailedError& e) {
      EXPECT_EQ(e.disk_id, 7);
      *out = true;
    }
  };
  sim.spawn(probe(d, &threw));
  sim.run();
  EXPECT_TRUE(threw);
}

TEST(DiskModel, ReplaceClearsContentsAndHeals) {
  sim::Simulation sim;
  Disk d(sim, tiny_params(), 0);
  std::vector<std::byte> data(4096, std::byte{0xaa});
  d.write_data(3, data);
  d.fail();
  EXPECT_TRUE(d.failed());
  d.replace();
  EXPECT_FALSE(d.failed());
  for (std::byte b : d.read_data(3, 1)) EXPECT_EQ(b, std::byte{0});
}

TEST(DiskModel, CountsOpsAndBytes) {
  sim::Simulation sim;
  Disk d(sim, tiny_params(), 0);
  sim.spawn(do_io(d, IoKind::kRead, 0, 4, IoPriority::kForeground, nullptr,
                  0, sim));
  sim.spawn(do_io(d, IoKind::kWrite, 100, 2, IoPriority::kForeground,
                  nullptr, 1, sim));
  sim.run();
  EXPECT_EQ(d.reads(), 1u);
  EXPECT_EQ(d.writes(), 1u);
  EXPECT_EQ(d.bytes_read(), 4u * 4096);
  EXPECT_EQ(d.bytes_written(), 2u * 4096);
  EXPECT_GT(d.busy_time(), 0);
}

TEST(ScsiBusModel, SerializesTransfers) {
  sim::Simulation sim;
  BusParams bp;
  ScsiBus bus(sim, bp);
  auto xfer = [](ScsiBus& b, std::uint64_t bytes) -> sim::Task<> {
    co_await b.transfer(bytes);
  };
  sim.spawn(xfer(bus, 1'000'000));
  sim.spawn(xfer(bus, 1'000'000));
  sim.run();
  // Two 1 MB transfers at 40 MB/s serialized: >= 50 ms.
  EXPECT_GE(sim.now(), sim::milliseconds(50));
}

TEST(ScsiBusModel, DisksOnSharedBusPipelineMechWithTransfer) {
  // Two disks on one bus: disk B's media phase overlaps disk A's bus
  // phase, so the pair finishes sooner than strict serialization.
  sim::Simulation sim;
  BusParams bp;
  ScsiBus bus(sim, bp);
  auto p = tiny_params();
  Disk a(sim, p, 0, &bus);
  Disk b(sim, p, 1, &bus);
  sim.spawn(do_io(a, IoKind::kRead, 50'000, 64, IoPriority::kForeground,
                  nullptr, 0, sim));
  sim.spawn(do_io(b, IoKind::kRead, 50'000, 64, IoPriority::kForeground,
                  nullptr, 1, sim));
  sim.run();
  const sim::Time together = sim.now();

  sim::Simulation sim2;
  ScsiBus bus2(sim2, bp);
  Disk c(sim2, p, 0, &bus2);
  const sim::Time one_mech = c.service_time(50'000, 64, false);
  const sim::Time one_bus =
      bp.arbitration + sim::transfer_time(64 * 4096, bp.rate_mbs);
  // Strictly serialized would be 2 * (mech + bus); overlap must beat it.
  EXPECT_LT(together, 2 * (one_mech + one_bus));
}

}  // namespace
}  // namespace raidx::disk
