# Empty dependencies file for engineering_fileserver.
# This may be replaced when dependencies are built.
