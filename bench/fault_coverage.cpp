// Fault-coverage matrix (Table 2's last row + Section 6's claim), verified
// empirically with data integrity: inject failures, attempt reads, report
// survive/lose per architecture.
//
// Expected: RAID-0 loses data on any failure; RAID-5 survives one, loses
// two; RAID-10 and RAID-x survive any single disk and, on the 4x3 array,
// one failure per stripe-group row (3 total) -- but not two in one row.
#include <cstdio>
#include <memory>
#include <vector>

#include "bench_util.hpp"
#include "sim/stats.hpp"

namespace {

using namespace raidx;
using workload::Arch;

constexpr std::uint32_t kBlocks = 96;

sim::Task<> fill(raid::ArrayController* eng) {
  std::vector<std::byte> data(
      static_cast<std::size_t>(kBlocks) * eng->block_bytes());
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<std::byte>(i * 31 + 5);
  }
  co_await eng->write(0, 0, data);
}

sim::Task<> verify(raid::ArrayController* eng, bool* ok) {
  std::vector<std::byte> back(
      static_cast<std::size_t>(kBlocks) * eng->block_bytes());
  try {
    co_await eng->read(1, 0, kBlocks, back);
  } catch (const raid::IoError&) {
    *ok = false;
    co_return;
  }
  *ok = true;
  for (std::size_t i = 0; i < back.size(); ++i) {
    if (back[i] != static_cast<std::byte>(i * 31 + 5)) {
      *ok = false;
      co_return;
    }
  }
}

// Build a fresh world, write data, kill `victims`, try to read it back.
bool survives(Arch arch, const std::vector<int>& victims) {
  auto params = cluster::ClusterParams::trojans_4x3();
  params.geometry.blocks_per_disk = 4096;
  bench::World world(params, arch);
  world.sim.spawn(fill(world.engine.get()));
  try {
    world.sim.run();
  } catch (const raid::IoError&) {
    return false;
  }
  for (int v : victims) world.cluster.disk(v).fail();
  bool ok = false;
  world.sim.spawn(verify(world.engine.get(), &ok));
  try {
    world.sim.run();
  } catch (const raid::IoError&) {
    return false;
  }
  return ok;
}

std::string cell(Arch arch, const std::vector<int>& victims) {
  return survives(arch, victims) ? "survives" : "DATA LOSS";
}

}  // namespace

int main() {
  std::printf(
      "Fault coverage on the 4x3 array (disks D0..D11; row g = disks "
      "4g..4g+3), verified byte-exactly\n\n");

  struct Scenario {
    const char* name;
    std::vector<int> victims;
  };
  const std::vector<Scenario> scenarios = {
      {"no failure", {}},
      {"single disk (D2)", {2}},
      {"one per row (D0,D5,D10)", {0, 5, 10}},
      {"two in one row, adjacent (D1,D2)", {1, 2}},
      {"two in one row, non-adjacent (D1,D3)", {1, 3}},
      {"two rows hit twice (D0,D1,D4)", {0, 1, 4}},
  };

  sim::TablePrinter table(
      {"scenario", "RAID-0", "RAID-5", "RAID-10", "RAID-x"});
  for (const auto& s : scenarios) {
    table.add_row({s.name, cell(workload::Arch::kRaid0, s.victims),
                   cell(workload::Arch::kRaid5, s.victims),
                   cell(workload::Arch::kRaid10, s.victims),
                   cell(workload::Arch::kRaidX, s.victims)});
  }
  table.print();

  std::printf(
      "\nNotes: RAID-10 survives two failures in one row when the copies\n"
      "are on other disks of the chain; RAID-x tolerates one failure per\n"
      "mirror group (here: per row), matching Section 6's 'up to 3 disk\n"
      "failures in 3 stripe groups'.\n");
  return 0;
}
