// Flash/FTL tests: byte-exact storage under page-map churn, copyback
// accounting, GC forward progress at the free-pool watermark, write-cliff
// synchronous reclaim, determinism, and the heterogeneous hybrid array
// (SSD primaries, HDD mirror images) in degraded and rebuild modes.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <tuple>
#include <vector>

#include "flash/ssd.hpp"
#include "ha/ha.hpp"
#include "raid/controller.hpp"
#include "raid/raid10.hpp"
#include "test_util.hpp"

namespace raidx {
namespace {

using test::pattern_block;
using test::pattern_run;
using test::Rig;

// ------------------------------------------------------------- SsdDevice --

/// A tiny flash device: 1024 logical pages over 16-page erase blocks, so a
/// few hundred writes exercise the append point, the GC watermarks, and
/// the write cliff without simulating gigabytes.
disk::DeviceGeometry tiny_geo() {
  disk::DeviceGeometry g;
  g.block_bytes = 512;
  g.total_blocks = 1024;
  return g;
}

flash::FlashParams tiny_flash(double op = 0.10) {
  flash::FlashParams p;
  p.pages_per_block = 16;
  p.over_provision = op;
  return p;
}

sim::Task<> dev_write(disk::Device& d, std::uint64_t block,
                      std::uint32_t nblocks) {
  co_await d.io(disk::IoKind::kWrite, block, nblocks);
}

/// Sequentially overwrite [lo, hi) `rounds` times, one page per request --
/// the update-in-place pattern flash cannot do, so every round invalidates
/// a full round of physical pages and feeds the collector.
sim::Task<> overwrite_sweep(flash::SsdDevice& d, int rounds, std::uint64_t lo,
                            std::uint64_t hi) {
  for (int r = 0; r < rounds; ++r) {
    for (std::uint64_t b = lo; b < hi; ++b) {
      co_await d.io(disk::IoKind::kWrite, b, 1);
    }
  }
}

TEST(FlashFtl, RoundTripsBytesUnderFtlChurn) {
  sim::Simulation sim;
  flash::SsdDevice ssd(sim, tiny_geo(), tiny_flash(), 0);

  // Fill the device, then overwrite a hot range with fresh contents until
  // the collector has demonstrably moved pages around.
  auto churn = [](flash::SsdDevice* d) -> sim::Task<> {
    for (std::uint64_t b = 0; b < d->total_blocks(); ++b) {
      d->write_data(b, pattern_block(b, d->block_bytes(), 1));
      co_await d->io(disk::IoKind::kWrite, b, 1);
    }
    for (int round = 2; round < 8; ++round) {
      for (std::uint64_t b = 0; b < 256; ++b) {
        d->write_data(b, pattern_block(b, d->block_bytes(),
                                       static_cast<std::uint8_t>(round)));
        co_await d->io(disk::IoKind::kWrite, b, 1);
      }
    }
  };
  sim.spawn(churn(&ssd));
  sim.run();

  ASSERT_GT(ssd.gc_erases(), 0u) << "churn never triggered the collector";
  // Copybacks and erases moved physical pages; the logical contents must
  // be exactly the last write of every block.
  for (std::uint64_t b = 0; b < 256; ++b) {
    EXPECT_EQ(ssd.read_data(b, 1), pattern_block(b, 512, 7)) << "lba " << b;
  }
  for (std::uint64_t b = 256; b < 1024; ++b) {
    EXPECT_EQ(ssd.read_data(b, 1), pattern_block(b, 512, 1)) << "lba " << b;
  }
}

TEST(FlashFtl, EveryFlashPageIsAHostWriteOrACopyback) {
  sim::Simulation sim;
  flash::SsdDevice ssd(sim, tiny_geo(), tiny_flash(), 0);
  sim.spawn(overwrite_sweep(ssd, /*rounds=*/6, 0, 1024));
  sim.run();

  EXPECT_EQ(ssd.host_pages_written(), 6u * 1024);
  // Valid-page accounting: physical programs decompose exactly into host
  // pages plus GC copybacks -- nothing else may touch the append point.
  EXPECT_EQ(ssd.flash_pages_written(),
            ssd.host_pages_written() + ssd.gc_pages_copied());
  EXPECT_GE(ssd.write_amplification(), 1.0);
  EXPECT_DOUBLE_EQ(ssd.write_amplification(),
                   static_cast<double>(ssd.flash_pages_written()) /
                       static_cast<double>(ssd.host_pages_written()));
}

TEST(FlashFtl, GcMakesForwardProgressAtTheLowWatermark) {
  sim::Simulation sim;
  const flash::FlashParams fp = tiny_flash();
  flash::SsdDevice ssd(sim, tiny_geo(), fp, 0);
  sim.spawn(overwrite_sweep(ssd, /*rounds=*/6, 0, 1024));
  sim.run();

  EXPECT_GT(ssd.gc_runs(), 0u);
  EXPECT_GT(ssd.gc_erases(), 0u);
  // The background collector never let the free pool starve...
  EXPECT_GE(ssd.min_free_blocks(), 1u);
  // ...and once traffic stopped it reclaimed back above the high
  // watermark (the drain condition of gc_loop).
  const auto nb = static_cast<double>(ssd.erase_blocks());
  const auto low = std::max<std::size_t>(
      1, static_cast<std::size_t>(fp.gc_low_watermark * nb));
  const auto high = std::max<std::size_t>(
      low + 1, static_cast<std::size_t>(fp.gc_high_watermark * nb));
  EXPECT_GE(ssd.free_blocks(), high);
  // Each arm hold charged real time: at least one erase per pause.
  EXPECT_GT(ssd.gc_busy_time(), 0);
  EXPECT_GE(ssd.gc_max_pause(), fp.erase_latency);
}

TEST(FlashFtl, WriteCliffReclaimsSynchronously) {
  // With no over-provisioning the second full-device write outruns any
  // background GC: the foreground write must eat copyback+erase itself.
  sim::Simulation sim;
  flash::SsdDevice ssd(sim, tiny_geo(), tiny_flash(/*op=*/0.0), 0);
  auto two_fills = [](flash::SsdDevice* d) -> sim::Task<> {
    co_await d->io(disk::IoKind::kWrite, 0, 1024);
    co_await d->io(disk::IoKind::kWrite, 0, 1024);
  };
  sim.spawn(two_fills(&ssd));
  sim.run();
  EXPECT_GT(ssd.gc_write_stalls(), 0u);
  EXPECT_EQ(ssd.flash_pages_written(),
            ssd.host_pages_written() + ssd.gc_pages_copied());
}

TEST(FlashFtl, CostBenefitPolicyAlsoConverges) {
  sim::Simulation sim;
  flash::FlashParams fp = tiny_flash();
  fp.gc_policy = flash::GcPolicy::kCostBenefit;
  flash::SsdDevice ssd(sim, tiny_geo(), fp, 0);
  sim.spawn(overwrite_sweep(ssd, /*rounds=*/6, 0, 1024));
  sim.run();
  EXPECT_GT(ssd.gc_erases(), 0u);
  EXPECT_EQ(ssd.flash_pages_written(),
            ssd.host_pages_written() + ssd.gc_pages_copied());
  EXPECT_GE(ssd.write_amplification(), 1.0);
}

TEST(FlashFtl, IdenticalRunsAreBitIdentical) {
  auto run_once = [] {
    sim::Simulation sim;
    flash::SsdDevice ssd(sim, tiny_geo(), tiny_flash(), 0);
    sim.spawn(overwrite_sweep(ssd, /*rounds=*/5, 0, 512));
    sim.run();
    return std::tuple{sim.now(),          ssd.flash_pages_written(),
                      ssd.gc_erases(),    ssd.gc_pages_copied(),
                      ssd.gc_busy_time(), ssd.min_free_blocks()};
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(FlashFtl, ReplaceHandsBackABlankDevice) {
  sim::Simulation sim;
  flash::SsdDevice ssd(sim, tiny_geo(), tiny_flash(), 0);
  ssd.write_data(3, pattern_block(3, 512));
  sim.spawn(overwrite_sweep(ssd, 3, 0, 1024));
  sim.run();
  ssd.fail();
  ssd.replace();
  EXPECT_FALSE(ssd.failed());
  // Fresh FTL: every block free but the open one, contents gone.
  EXPECT_EQ(ssd.free_blocks(), ssd.erase_blocks() - 1);
  for (std::byte b : ssd.read_data(3, 1)) EXPECT_EQ(b, std::byte{0});
  // And it accepts traffic again.
  sim.spawn(dev_write(ssd, 0, 8));
  sim.run();
  EXPECT_GT(ssd.writes(), 0u);
}

// ---------------------------------------------------------- hybrid array --

/// 4 nodes x 2 disks: row 0 (global ids 0..3) flash, row 1 (ids 4..7)
/// spindles -- the HDA split the hybrid layouts place primaries/images on.
cluster::ClusterParams hybrid_cluster() {
  cluster::ClusterParams p = test::small_cluster(4, 2, 600, 512);
  p.device_map.assign(8, disk::DeviceClass::kHdd);
  for (int j = 0; j < 4; ++j) p.device_map[j] = disk::DeviceClass::kSsd;
  return p;
}

raid::EngineParams hybrid_engine() {
  raid::EngineParams ep;
  ep.hybrid_mirrors = true;
  return ep;
}

sim::Task<> write_all(raid::IoEngine* eng, std::uint64_t lba,
                      std::uint32_t nblocks, std::uint8_t salt = 0) {
  const auto data = pattern_run(lba, nblocks, eng->block_bytes(), salt);
  co_await eng->write(0, lba, data);
}

sim::Task<> read_all(raid::IoEngine* eng, std::uint64_t lba,
                     std::uint32_t nblocks, std::vector<std::byte>* got,
                     int client = 1) {
  got->assign(static_cast<std::size_t>(nblocks) * eng->block_bytes(),
              std::byte{0});
  co_await eng->read(client, lba, nblocks, *got);
}

TEST(HybridRaidx, PrimariesLandOnFlashImagesOnSpindles) {
  Rig rig(hybrid_cluster());
  raid::RaidxController eng(rig.fabric, hybrid_engine());
  EXPECT_EQ(eng.layout().name(), "RAID-x/hybrid");
  for (std::uint64_t b = 0; b < eng.layout().logical_blocks(); ++b) {
    const auto d = eng.raidx().data_location(b);
    EXPECT_EQ(rig.cluster.device_class(d.disk), disk::DeviceClass::kSsd);
    for (const auto& m : eng.raidx().mirror_locations(b)) {
      EXPECT_EQ(rig.cluster.device_class(m.disk), disk::DeviceClass::kHdd);
    }
  }
}

TEST(HybridRaidx, DegradedReadFallsBackToHddImages) {
  Rig rig(hybrid_cluster());
  raid::RaidxController eng(rig.fabric, hybrid_engine());
  rig.run(write_all(&eng, 0, 64, /*salt=*/3));

  rig.cluster.disk(1).fail();  // an SSD primary
  std::vector<std::byte> got;
  rig.run(read_all(&eng, 0, 64, &got));
  EXPECT_EQ(got, pattern_run(0, 64, eng.block_bytes(), 3));
}

TEST(HybridRaidx, RebuildRestoresAnSsdPrimaryFromItsImages) {
  Rig rig(hybrid_cluster());
  raid::RaidxController eng(rig.fabric, hybrid_engine());
  rig.run(write_all(&eng, 0, 64, /*salt=*/4));

  rig.cluster.disk(1).fail();
  rig.cluster.disk(1).replace();
  auto rebuild = [](raid::RaidxController* e) -> sim::Task<> {
    co_await e->rebuild_disk(1, 1);
  };
  rig.run(rebuild(&eng));
  EXPECT_FALSE(rig.cluster.disk(1).rebuilding());

  // The replacement flash device holds the data zone byte-exactly.
  for (std::uint64_t b = 0; b < 64; ++b) {
    const auto d = eng.raidx().data_location(b);
    if (d.disk != 1) continue;
    EXPECT_EQ(rig.cluster.disk(1).read_data(d.offset, 1),
              pattern_block(b, eng.block_bytes(), 4))
        << "lba " << b;
  }
  std::vector<std::byte> got;
  rig.run(read_all(&eng, 0, 64, &got, 2));
  EXPECT_EQ(got, pattern_run(0, 64, eng.block_bytes(), 4));
}

TEST(HybridRaid10, DegradedReadAndRebuildOfAnHddMirror) {
  Rig rig(hybrid_cluster());
  raid::Raid10Controller eng(rig.fabric, hybrid_engine());
  EXPECT_EQ(eng.layout().name(), "RAID-10/hybrid");
  rig.run(write_all(&eng, 0, 64, /*salt=*/5));

  // Failing a bottom-row spindle leaves every primary intact...
  rig.cluster.disk(6).fail();
  std::vector<std::byte> got;
  rig.run(read_all(&eng, 0, 64, &got));
  EXPECT_EQ(got, pattern_run(0, 64, eng.block_bytes(), 5));

  // ...and its mirror zone rebuilds from the chained primaries.
  rig.cluster.disk(6).replace();
  auto rebuild = [](raid::Raid10Controller* e) -> sim::Task<> {
    co_await e->rebuild_disk(2, 6);
  };
  rig.run(rebuild(&eng));
  EXPECT_FALSE(rig.cluster.disk(6).rebuilding());

  // Kill an SSD primary that disk 6 backs up: reads must now be served
  // from the freshly rebuilt mirror images.
  raid::Raid10Layout lay(rig.cluster.geometry(), /*hybrid=*/true);
  for (std::uint64_t b = 0; b < lay.logical_blocks(); ++b) {
    for (const auto& m : lay.mirror_locations(b)) {
      if (m.disk == 6) {
        rig.cluster.disk(lay.data_location(b).disk).fail();
        std::vector<std::byte> one(eng.block_bytes());
        auto read_one = [](raid::IoEngine* e, std::uint64_t lba,
                           std::span<std::byte> out) -> sim::Task<> {
          co_await e->read(3, lba, 1, out);
        };
        rig.run(read_one(&eng, b, one));
        EXPECT_EQ(one, pattern_block(b, eng.block_bytes(), 5));
        return;
      }
    }
  }
  FAIL() << "disk 6 mirrors nothing";
}

TEST(HybridSpares, FailoverIsClassMatched) {
  Rig rig(hybrid_cluster());
  raid::RaidxController eng(rig.fabric, hybrid_engine());
  rig.run(write_all(&eng, 0, 64, /*salt=*/6));

  ha::HaParams hp;
  hp.probe_interval = sim::milliseconds(5);
  hp.probe_timeout = sim::milliseconds(2);
  hp.spare_swap_time = sim::milliseconds(10);
  hp.spares_per_node = 1;  // one per class racked at every hybrid node
  hp.global_spares = 0;
  ha::Orchestrator orch(eng, hp);

  // Both classes are stocked: 1 SSD + 1 HDD spare at each node.
  EXPECT_EQ(orch.spares().available(1, disk::DeviceClass::kSsd), 1);
  EXPECT_EQ(orch.spares().available(1, disk::DeviceClass::kHdd), 1);

  // First SSD failure consumes node 1's flash spare.
  rig.cluster.disk(1).fail();
  orch.note_fault_injected(1);
  rig.sim.run();
  EXPECT_EQ(orch.disk_state(1), ha::DiskState::kHealthy);
  EXPECT_EQ(orch.stats().rebuilds_completed, 1u);
  EXPECT_EQ(orch.spares().available(1, disk::DeviceClass::kSsd), 0);
  EXPECT_EQ(orch.spares().available(1, disk::DeviceClass::kHdd), 1);
  EXPECT_EQ(orch.stats().spare_class_mismatch, 0u);

  // Second failure of the same slot: the racked HDD spare cannot stand in
  // for flash, so the slot parks degraded and the mismatch is counted.
  rig.cluster.disk(1).fail();
  orch.note_fault_injected(1);
  rig.sim.run();
  EXPECT_EQ(orch.disk_state(1), ha::DiskState::kDegraded);
  EXPECT_EQ(orch.stats().spare_exhausted, 1u);
  EXPECT_EQ(orch.stats().spare_class_mismatch, 1u);
  EXPECT_EQ(orch.spares().available(1, disk::DeviceClass::kHdd), 1);

  // The array still serves through the HDD images meanwhile.
  std::vector<std::byte> got;
  rig.run(read_all(&eng, 0, 64, &got, 2));
  EXPECT_EQ(got, pattern_run(0, 64, eng.block_bytes(), 6));
}

}  // namespace
}  // namespace raidx
