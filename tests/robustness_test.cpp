// Robustness tests: failures injected *while* I/O is in flight, mixed
// concurrent traffic, rebuild under load, and engine-parameter properties.
#include <gtest/gtest.h>

#include "raid/controller.hpp"
#include "test_util.hpp"
#include "workload/parallel_io.hpp"

namespace raidx {
namespace {

using test::Rig;
using test::pattern_run;

sim::Task<> write_all(raid::IoEngine* eng, std::uint64_t lba,
                      std::uint32_t nblocks, std::uint8_t salt = 0) {
  const auto data = pattern_run(lba, nblocks, eng->block_bytes(), salt);
  co_await eng->write(0, lba, data);
}

sim::Task<> read_all(raid::IoEngine* eng, std::uint64_t lba,
                     std::uint32_t nblocks, std::vector<std::byte>* got,
                     int client = 1) {
  got->assign(static_cast<std::size_t>(nblocks) * eng->block_bytes(),
              std::byte{0});
  co_await eng->read(client, lba, nblocks, *got);
}

TEST(MidFlightFailure, RaidxReadSurvivesDiskDeathDuringTheRead) {
  Rig rig(test::small_cluster());
  raid::RaidxController eng(rig.fabric);
  rig.run(write_all(&eng, 0, 64));
  std::vector<std::byte> got;
  rig.sim.spawn(read_all(&eng, 0, 64, &got));
  // Let the read get partway, then kill a disk under it.
  rig.sim.run_until(rig.sim.now() + sim::milliseconds(40));
  rig.cluster.disk(1).fail();
  rig.sim.run();
  EXPECT_EQ(got, pattern_run(0, 64, eng.block_bytes()));
}

TEST(MidFlightFailure, Raid5ReadSurvivesDiskDeathDuringTheRead) {
  Rig rig(test::small_cluster());
  raid::Raid5Controller eng(rig.fabric);
  rig.run(write_all(&eng, 0, 64));
  std::vector<std::byte> got;
  rig.sim.spawn(read_all(&eng, 0, 64, &got));
  rig.sim.run_until(rig.sim.now() + sim::milliseconds(40));
  rig.cluster.disk(2).fail();
  rig.sim.run();
  EXPECT_EQ(got, pattern_run(0, 64, eng.block_bytes()));
}

TEST(MidFlightFailure, RaidxWriteDuringDiskDeathStaysDurable) {
  Rig rig(test::small_cluster());
  raid::RaidxController eng(rig.fabric);
  rig.sim.spawn(write_all(&eng, 0, 64, 3));
  rig.sim.run_until(rig.sim.now() + sim::milliseconds(60));
  rig.cluster.disk(3).fail();
  rig.sim.run();
  std::vector<std::byte> got;
  rig.run(read_all(&eng, 0, 64, &got));
  EXPECT_EQ(got, pattern_run(0, 64, eng.block_bytes(), 3));
}

TEST(RebuildUnderLoad, RaidxServesReadsWhileRebuilding) {
  Rig rig(test::small_cluster(4, 1, /*blocks_per_disk=*/200));
  raid::RaidxController eng(rig.fabric);
  rig.run(write_all(&eng, 0, 64, 5));
  rig.cluster.disk(2).fail();
  rig.cluster.disk(2).replace();

  auto rebuild = [](raid::RaidxController* e) -> sim::Task<> {
    co_await e->rebuild_disk(2, 2);
  };
  std::vector<std::byte> got1, got2;
  rig.sim.spawn(rebuild(&eng));
  rig.sim.spawn(read_all(&eng, 0, 64, &got1, 1));
  rig.sim.spawn(read_all(&eng, 0, 64, &got2, 3));
  rig.sim.run();
  EXPECT_EQ(got1, pattern_run(0, 64, eng.block_bytes(), 5));
  EXPECT_EQ(got2, pattern_run(0, 64, eng.block_bytes(), 5));
  // And the rebuilt disk serves afterwards, alone.
  rig.cluster.disk(0).fail();
  std::vector<std::byte> got3;
  rig.run(read_all(&eng, 0, 64, &got3, 1));
  EXPECT_EQ(got3, pattern_run(0, 64, eng.block_bytes(), 5));
}

// A second failure mid-sweep must abort the rebuild *cleanly*: IoError
// surfaces to the caller, and the half-rebuilt spare stays marked
// rebuilding at a frozen watermark.  The regression this guards: if the
// abort path ever marks the rebuild finished, the unrestored tail of the
// spare silently serves blank blocks instead of failing or degrading.
TEST(RebuildAbort, SecondFailureFreezesTheWatermarkOnRaid5) {
  Rig rig(test::small_cluster(4, 1, /*blocks_per_disk=*/200));
  raid::Raid5Controller eng(rig.fabric);
  rig.run(write_all(&eng, 0, 64, 6));
  rig.cluster.disk(2).fail();
  rig.cluster.disk(2).replace();

  bool aborted = false;
  auto rebuild = [](raid::Raid5Controller* e, bool* aborted) -> sim::Task<> {
    try {
      co_await e->rebuild_disk(2, 2);
    } catch (const raid::IoError&) {
      *aborted = true;
    }
  };
  rig.sim.spawn(rebuild(&eng, &aborted));
  // Let the sweep restore part of the disk, then kill one of its sources.
  rig.sim.run_until(rig.sim.now() + sim::milliseconds(30));
  rig.cluster.disk(0).fail();
  rig.sim.run();

  EXPECT_TRUE(aborted);
  EXPECT_TRUE(rig.cluster.disk(2).rebuilding());
  const std::uint64_t frozen = rig.cluster.disk(2).rebuild_watermark();
  EXPECT_GT(frozen, 0u);
  EXPECT_LT(frozen, 200u);
  rig.sim.run();
  EXPECT_EQ(rig.cluster.disk(2).rebuild_watermark(), frozen);

  // With disk 0 dead and disk 2 only partially restored, a read that
  // needs the unrestored tail must fail -- never serve the blank spare.
  bool read_failed = false;
  std::vector<std::byte> got;
  auto tail_read = [](raid::Raid5Controller* e, std::vector<std::byte>* got,
                      bool* failed) -> sim::Task<> {
    try {
      got->assign(64 * e->block_bytes(), std::byte{0});
      co_await e->read(1, 0, 64, *got);
    } catch (const raid::IoError&) {
      *failed = true;
    }
  };
  rig.run(tail_read(&eng, &got, &read_failed));
  EXPECT_TRUE(read_failed);
}

TEST(RebuildAbort, SecondFailureFreezesTheWatermarkOnRaidx) {
  Rig rig(test::small_cluster(4, 1, /*blocks_per_disk=*/200));
  raid::RaidxController eng(rig.fabric);
  rig.run(write_all(&eng, 0, 64, 7));
  rig.cluster.disk(1).fail();
  rig.cluster.disk(1).replace();

  bool aborted = false;
  auto rebuild = [](raid::RaidxController* e, bool* aborted) -> sim::Task<> {
    try {
      co_await e->rebuild_disk(1, 1);
    } catch (const raid::IoError&) {
      *aborted = true;
    }
  };
  rig.sim.spawn(rebuild(&eng, &aborted));
  rig.sim.run_until(rig.sim.now() + sim::milliseconds(30));
  rig.cluster.disk(3).fail();
  rig.sim.run();

  EXPECT_TRUE(aborted);
  EXPECT_TRUE(rig.cluster.disk(1).rebuilding());
  EXPECT_LT(rig.cluster.disk(1).rebuild_watermark(), 200u);
}

TEST(MixedTraffic, ReadersAndWritersOnDisjointRangesStayCorrect) {
  Rig rig(test::small_cluster());
  raid::RaidxController eng(rig.fabric);
  rig.run(write_all(&eng, 0, 32, 1));

  auto reader_loop = [](raid::RaidxController* e,
                        std::vector<std::byte>* out) -> sim::Task<> {
    for (int i = 0; i < 4; ++i) {
      out->assign(32 * e->block_bytes(), std::byte{0});
      co_await e->read(1, 0, 32, *out);
    }
  };
  auto writer_loop = [](raid::RaidxController* e) -> sim::Task<> {
    for (int i = 0; i < 4; ++i) {
      const auto data = pattern_run(64, 32, e->block_bytes(),
                                    static_cast<std::uint8_t>(i));
      co_await e->write(2, 64, data);
    }
  };
  std::vector<std::byte> reader_saw;
  rig.sim.spawn(reader_loop(&eng, &reader_saw));
  rig.sim.spawn(writer_loop(&eng));
  rig.sim.run();
  // The reader's range was never written concurrently: always salt 1.
  EXPECT_EQ(reader_saw, pattern_run(0, 32, eng.block_bytes(), 1));
  // The writer's final state is its last round.
  std::vector<std::byte> final_state;
  rig.run(read_all(&eng, 64, 32, &final_state));
  EXPECT_EQ(final_state, pattern_run(64, 32, eng.block_bytes(), 3));
}

// ---- engine-parameter properties -------------------------------------------

struct WindowCase {
  int window;
};

class WindowSweep : public ::testing::TestWithParam<WindowCase> {};

INSTANTIATE_TEST_SUITE_P(Windows, WindowSweep,
                         ::testing::Values(WindowCase{1}, WindowCase{2},
                                           WindowCase{4}, WindowCase{8}),
                         [](const auto& info) {
                           return "w" + std::to_string(info.param.window);
                         });

TEST_P(WindowSweep, RoundTripsHoldAtEveryWindow) {
  raid::EngineParams ep;
  ep.read_window = GetParam().window;
  ep.write_window = GetParam().window;
  Rig rig(test::small_cluster());
  raid::RaidxController eng(rig.fabric, ep);
  rig.run(write_all(&eng, 2, 50, 8));
  std::vector<std::byte> got;
  rig.run(read_all(&eng, 2, 50, &got));
  EXPECT_EQ(got, pattern_run(2, 50, eng.block_bytes(), 8));
}

TEST(WindowProperty, WiderWindowsNeverSlowASingleStream) {
  auto time_read = [](int window) {
    auto params = test::small_cluster(4, 1, 4096, 32'768);
    params.disk.store_data = false;
    Rig rig(params);
    raid::EngineParams ep;
    ep.read_window = window;
    raid::RaidxController eng(rig.fabric, ep);
    workload::ParallelIoConfig cfg;
    cfg.clients = 1;
    cfg.op = workload::IoOp::kRead;
    cfg.bytes_per_op = 64ull * 32'768;
    return workload::run_parallel_io(eng, cfg).elapsed;
  };
  const auto w1 = time_read(1);
  const auto w2 = time_read(2);
  const auto w8 = time_read(8);
  EXPECT_LE(w2, w1);
  EXPECT_LE(w8, w2);
}

TEST(LocksProperty, DisablingLocksPreservesSingleWriterResults) {
  for (bool locks : {true, false}) {
    raid::EngineParams ep;
    ep.use_locks = locks;
    Rig rig(test::small_cluster());
    raid::RaidxController eng(rig.fabric, ep);
    rig.run(write_all(&eng, 0, 40, 2));
    std::vector<std::byte> got;
    rig.run(read_all(&eng, 0, 40, &got));
    EXPECT_EQ(got, pattern_run(0, 40, eng.block_bytes(), 2))
        << "locks=" << locks;
  }
}

TEST(ChunkProperty, LargerReadChunksReduceDiskOps) {
  auto count_ops = [](std::uint32_t chunk) {
    raid::EngineParams ep;
    ep.read_chunk_blocks = chunk;
    Rig rig(test::small_cluster());
    raid::RaidxController eng(rig.fabric, ep);
    auto scenario = [](raid::RaidxController* e) -> sim::Task<> {
      std::vector<std::byte> buf(64 * e->block_bytes());
      co_await e->read(0, 0, 64, buf);
    };
    rig.run(scenario(&eng));
    std::uint64_t ops = 0;
    for (int d = 0; d < 4; ++d) ops += rig.cluster.disk(d).reads();
    return ops;
  };
  EXPECT_GT(count_ops(1), count_ops(8));
}

}  // namespace
}  // namespace raidx
