file(REMOVE_RECURSE
  "CMakeFiles/degraded_perf.dir/degraded_perf.cpp.o"
  "CMakeFiles/degraded_perf.dir/degraded_perf.cpp.o.d"
  "degraded_perf"
  "degraded_perf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/degraded_perf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
