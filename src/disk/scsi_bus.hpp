// Shared SCSI bus model.
//
// In the Trojans cluster each node's k disks hang off shared SCSI buses;
// the paper exploits this by pipelining consecutive stripe groups ("depth of
// pipelining" k): while one disk transfers on the bus, the others seek.  We
// model the bus as a capacity-1 resource with an arbitration cost plus a
// bandwidth-limited data phase, distinct from the disks' media phase, so
// that exactly this overlap arises.
#pragma once

#include <cstdint>
#include <memory>

#include "obs/obs.hpp"
#include "sim/event_queue.hpp"
#include "sim/resource.hpp"
#include "sim/task.hpp"

namespace raidx::disk {

struct BusParams {
  double rate_mbs = 40.0;             // Ultra Wide SCSI
  sim::Time arbitration = sim::microseconds(30);
};

class ScsiBus {
 public:
  /// `id` labels the bus's trace lane (the owning node id); -1 = unnamed.
  ScsiBus(sim::Simulation& sim, BusParams params, int id = -1);

  /// Occupy the bus long enough to move `bytes` across it.
  sim::Task<> transfer(std::uint64_t bytes, obs::TraceContext ctx = {});

  const BusParams& params() const { return params_; }
  sim::Time busy_time() const { return bus_.busy_time(); }
  int id() const { return id_; }

 private:
  sim::Simulation& sim_;
  BusParams params_;
  int id_;
  sim::Resource bus_;
  obs::BusyRecorder busy_rec_;
};

}  // namespace raidx::disk
