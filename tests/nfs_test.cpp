// NFS-baseline tests: central-server structure and its bottlenecks.
#include <gtest/gtest.h>

#include "nfs/nfs.hpp"
#include "test_util.hpp"
#include "workload/parallel_io.hpp"

namespace raidx::nfs {
namespace {

using test::Rig;

TEST(Nfs, AllBlocksLiveOnTheServer) {
  Rig rig(test::small_cluster(4, 2));
  NfsEngine eng(rig.fabric);
  const auto& geo = rig.cluster.geometry();
  for (std::uint64_t b = 0; b < 256; ++b) {
    const auto pb = eng.layout().data_location(b);
    EXPECT_EQ(geo.node_of(pb.disk), eng.server_node());
  }
}

TEST(Nfs, StripesOverTheServersLocalDisks) {
  Rig rig(test::small_cluster(4, 2));
  NfsEngine eng(rig.fabric);
  std::set<int> disks;
  for (std::uint64_t b = 0; b < 8; ++b) {
    disks.insert(eng.layout().data_location(b).disk);
  }
  EXPECT_EQ(disks.size(), 2u);  // k = 2 local disks
}

TEST(Nfs, CapacityIsTheServersDisks) {
  Rig rig(test::small_cluster(4, 2));
  NfsEngine eng(rig.fabric);
  EXPECT_EQ(eng.logical_blocks(),
            2 * rig.cluster.geometry().blocks_per_disk);
}

TEST(Nfs, RemoteClientTrafficFlowsThroughServerPort) {
  Rig rig(test::small_cluster());
  NfsEngine eng(rig.fabric);
  auto scenario = [](NfsEngine* e) -> sim::Task<> {
    std::vector<std::byte> buf(e->block_bytes() * 4);
    co_await e->read(2, 0, 4, buf);
  };
  rig.run(scenario(&eng));
  EXPECT_GT(rig.cluster.network().bytes_sent(eng.server_node()), 0u);
  EXPECT_GT(rig.cluster.network().bytes_sent(2), 0u);
}

TEST(Nfs, AggregateBandwidthCapsNearOneLink) {
  auto p = test::small_cluster(8, 1, 8192, 8192);
  p.disk.store_data = false;
  // A fast server disk so the network port is the binding constraint.
  p.disk.media_rate_mbs = 1000.0;
  p.disk.track_to_track_seek = 0;
  p.disk.full_stroke_seek = 0;
  p.node.cpu_ns_per_byte = 1.0;
  Rig rig(p);
  NfsEngine eng(rig.fabric, raid::EngineParams{},
                NfsParams{.server_extra_ns_per_byte = 1.0});
  workload::ParallelIoConfig cfg;
  cfg.clients = 7;
  cfg.op = workload::IoOp::kRead;
  cfg.bytes_per_op = 256 * 8192;
  cfg.exclude_node = eng.server_node();
  const auto r = workload::run_parallel_io(eng, cfg);
  EXPECT_LE(r.aggregate_mbs, rig.cluster.params().net.effective_mbs() * 1.1);
}

TEST(Nfs, ServerReadaheadWidensReadChunks) {
  Rig rig(test::small_cluster());
  NfsParams np;
  np.server_readahead_blocks = 8;
  NfsEngine eng(rig.fabric, raid::EngineParams{}, np);
  auto scenario = [](NfsEngine* e) -> sim::Task<> {
    std::vector<std::byte> buf(e->block_bytes() * 16);
    co_await e->read(1, 0, 16, buf);
  };
  rig.run(scenario(&eng));
  // 16 blocks at readahead 8 -> at most 2 disk reads + maybe boundary.
  EXPECT_LE(rig.cluster.disk(0).reads(), 3u);
}

TEST(Nfs, FailedServerDiskFailsRequests) {
  Rig rig(test::small_cluster());
  NfsEngine eng(rig.fabric);
  rig.cluster.disk(eng.server_node()).fail();
  auto scenario = [](NfsEngine* e) -> sim::Task<> {
    std::vector<std::byte> buf(e->block_bytes());
    co_await e->read(1, 0, 1, buf);
  };
  rig.sim.spawn(scenario(&eng));
  EXPECT_THROW(rig.sim.run(), raid::IoError);
}

}  // namespace
}  // namespace raidx::nfs
