// CRC32C (Castagnoli) block checksums for the integrity plane.
//
// Two properties matter to the simulator:
//   * determinism -- the checksum of a block is a pure function of its
//     bytes, so every run computes identical sums and corruption detection
//     is bit-reproducible;
//   * an O(1)/O(log n) fast path for zero-run payloads -- pure-timing
//     sweeps (store_data=false) move gigabytes of logically-zero data as
//     block::Payload zero-runs with no storage behind them, and checksum
//     maintenance must not materialize those bytes.  Appending a zero byte
//     to a CRC register is a linear map over GF(2), so extending a CRC by
//     n zero bytes is one 32x32 bit-matrix power -- O(log n) matrix
//     squarings, no buffer.
// crc_of() guarantees the two paths agree: the checksum of a zero-run
// payload equals the checksum of the same bytes materialized.
#pragma once

#include <cstdint>
#include <span>

#include "block/payload.hpp"

namespace raidx::integrity {

/// CRC32C of `data` appended to a message whose CRC so far is `crc`.
/// Pass 0 for a fresh message; the empty message has CRC 0.
std::uint32_t crc32c(std::uint32_t crc, std::span<const std::byte> data);

inline std::uint32_t crc32c(std::span<const std::byte> data) {
  return crc32c(0, data);
}

/// CRC32C of `crc`'s message extended by `n` zero bytes, in O(log n)
/// (GF(2) matrix exponentiation of the one-zero-byte register operator).
std::uint32_t crc32c_extend_zeros(std::uint32_t crc, std::uint64_t n);

/// CRC32C of a run of `n` zero bytes.
inline std::uint32_t crc32c_zeros(std::uint64_t n) {
  return crc32c_extend_zeros(0, n);
}

/// Checksum of a payload's bytes.  Zero-runs take the O(log n) path;
/// the result is identical to checksumming the materialized bytes.
std::uint32_t crc_of(const block::Payload& p);

}  // namespace raidx::integrity
